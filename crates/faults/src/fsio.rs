//! Durable, injectable file persistence.
//!
//! Everything the harness writes that must survive a crash — grid
//! checkpoints, crash-repro bundles — goes through [`persist`]: write to
//! a sibling temp file, `fsync` it, atomically rename over the
//! destination, then `fsync` the parent directory so the rename itself
//! is durable. A kill at any point leaves either the old file or the new
//! one, never a torn mix, and a powered-off machine cannot lose the
//! rename.
//!
//! Because this is the single choke point for durable writes, it is also
//! where the fault plan's `io-error` and `corrupt` clauses bite: an
//! injected error surfaces exactly as a real disk failure would, and an
//! injected corruption writes a payload whose checksum no longer
//! matches, exercising every caller's load-time validation.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

/// Durably persist `bytes` at `path` (temp file, fsync, atomic rename,
/// parent-directory fsync). `target` names the write for the fault
/// plan (`checkpoint`, `bundle`, `cache`, …).
///
/// The temp file name embeds the process id, so concurrent shard
/// workers persisting the same path (e.g. a shared cache entry both
/// just computed) cannot stomp each other's in-flight temp file; the
/// final rename is atomic and last-writer-wins with identical bytes.
///
/// # Errors
///
/// Any real I/O failure, or an injected `io-error` clause matching
/// `target`.
pub fn persist(path: &Path, bytes: &[u8], target: &str) -> io::Result<()> {
    let mut payload = bytes;
    let mut mangled;
    match crate::write_fault(target) {
        Some(crate::WriteVerdict::Fail(e)) => return Err(e),
        Some(crate::WriteVerdict::CorruptByte) => {
            // Flip one byte mid-payload: framing stays plausible, the
            // checksum does not.
            mangled = bytes.to_vec();
            if !mangled.is_empty() {
                let mid = mangled.len() / 2;
                mangled[mid] ^= 0xA5;
            }
            payload = &mangled;
        }
        Some(crate::WriteVerdict::Truncate) => {
            // A torn write: only a prefix reached the disk before the
            // "crash". Half the payload keeps the header readable so
            // load-time validation has to catch the missing tail, not
            // just an unreadable magic.
            mangled = bytes[..bytes.len() / 2].to_vec();
            payload = &mangled;
        }
        None => {}
    }

    let tmp = path.with_extension(format!("tmp{}", std::process::id()));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(payload)?;
        // The data must be on stable storage before the rename makes it
        // the current checkpoint, else a crash could promote a torn file.
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Durability of the rename itself requires syncing the directory
    // entry. Directories cannot be fsync'd on every platform; best-effort
    // failures (e.g. on exotic filesystems) are ignored, real write
    // errors above are not.
    if let Some(parent) = path.parent() {
        let parent = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persist_writes_and_replaces_atomically() {
        let dir = std::env::temp_dir().join(format!("jsmt-fsio-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.bin");
        persist(&path, b"first", "test-target").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        persist(&path, b"second", "test-target").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "state.bin")
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files must not linger: {leftovers:?}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_persists_a_truncated_prefix() {
        let _l = crate::tests::lock();
        let dir = std::env::temp_dir().join(format!("jsmt-fsio-torn-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("entry.cell");
        crate::install_spec("torn,target=torn-test,nth=1").unwrap();
        persist(&path, b"0123456789", "torn-test").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"0123456789"); // write #0 clean
        persist(&path, b"0123456789", "torn-test").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"01234"); // write #1 torn
        persist(&path, b"0123456789", "torn-test").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"0123456789"); // #2 clean again
        crate::clear();
        fs::remove_dir_all(&dir).unwrap();
    }
}
