//! Durable, injectable file persistence.
//!
//! Everything the harness writes that must survive a crash — grid
//! checkpoints, crash-repro bundles — goes through [`persist`]: write to
//! a sibling temp file, `fsync` it, atomically rename over the
//! destination, then `fsync` the parent directory so the rename itself
//! is durable. A kill at any point leaves either the old file or the new
//! one, never a torn mix, and a powered-off machine cannot lose the
//! rename.
//!
//! Because this is the single choke point for durable writes, it is also
//! where the fault plan's `io-error` and `corrupt` clauses bite: an
//! injected error surfaces exactly as a real disk failure would, and an
//! injected corruption writes a payload whose checksum no longer
//! matches, exercising every caller's load-time validation.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

/// Durably persist `bytes` at `path` (temp file, fsync, atomic rename,
/// parent-directory fsync). `target` names the write for the fault
/// plan (`checkpoint`, `bundle`, …).
///
/// # Errors
///
/// Any real I/O failure, or an injected `io-error` clause matching
/// `target`.
pub fn persist(path: &Path, bytes: &[u8], target: &str) -> io::Result<()> {
    let mut payload = bytes;
    let mut corrupted;
    match crate::write_fault(target) {
        Some(Err(e)) => return Err(e),
        Some(Ok(())) => {
            // Flip one byte mid-payload: framing stays plausible, the
            // checksum does not.
            corrupted = bytes.to_vec();
            if !corrupted.is_empty() {
                let mid = corrupted.len() / 2;
                corrupted[mid] ^= 0xA5;
            }
            payload = &corrupted;
        }
        None => {}
    }

    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(payload)?;
        // The data must be on stable storage before the rename makes it
        // the current checkpoint, else a crash could promote a torn file.
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Durability of the rename itself requires syncing the directory
    // entry. Directories cannot be fsync'd on every platform; best-effort
    // failures (e.g. on exotic filesystems) are ignored, real write
    // errors above are not.
    if let Some(parent) = path.parent() {
        let parent = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persist_writes_and_replaces_atomically() {
        let dir = std::env::temp_dir().join(format!("jsmt-fsio-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.bin");
        persist(&path, b"first", "test-target").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        persist(&path, b"second", "test-target").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        assert!(
            !path.with_extension("tmp").exists(),
            "temp file must not linger"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
