//! Property-based tests across the benchmark kernels: for any benchmark,
//! thread count and scale, the kernel must terminate, emit well-formed
//! µops, stay deterministic, and respect its blocking protocol.

use jsmt_isa::Region;
use jsmt_jvm::{EmitCtx, JvmProcess};
use jsmt_workloads::{build, jvm_config_for, BenchmarkId, StepOutcome, WorkloadSpec};
use proptest::prelude::*;

fn arb_benchmark() -> impl Strategy<Value = BenchmarkId> {
    prop::sample::select(BenchmarkId::ALL.to_vec())
}

/// Drive a kernel to completion in a minimal harness (round-robin over
/// threads, honouring blocks/wakes/GC), collecting stats.
fn drive(id: BenchmarkId, threads: usize, scale: f64) -> (u64, u64, u64) {
    let mut jvm = JvmProcess::new(1, jvm_config_for(id));
    let mut k = build(WorkloadSpec { id, threads, scale });
    k.setup(&mut jvm);
    let mut blocked = vec![false; threads];
    let mut finished = vec![false; threads];
    let (mut uops, mut gcs, mut steps) = (0u64, 0u64, 0u64);
    while finished.iter().any(|f| !f) {
        steps += 1;
        assert!(steps < 3_000_000, "runaway: {id} t={threads} s={scale}");
        let mut progressed = false;
        for tid in 0..threads {
            if blocked[tid] || finished[tid] {
                continue;
            }
            progressed = true;
            let mut out = Vec::new();
            let mut ctx = EmitCtx::new(&mut jvm, &mut out);
            let r = k.step(tid, &mut ctx);
            uops += out.len() as u64;
            for u in &out {
                assert!(!u.privileged, "kernels must not emit kernel-mode µops");
                assert_ne!(Region::of(u.pc), Region::KernelCode);
            }
            for &w in &r.wake {
                assert!(w < threads, "wake index out of range");
                blocked[w] = false;
            }
            match r.outcome {
                StepOutcome::Blocked(_) => blocked[tid] = true,
                StepOutcome::Finished => finished[tid] = true,
                StepOutcome::NeedsGc => {
                    jvm.collect();
                    gcs += 1;
                }
                StepOutcome::Ran => {}
            }
        }
        assert!(
            progressed,
            "all threads blocked with none finished: deadlock in {id}"
        );
    }
    (uops, gcs, steps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Every benchmark terminates at any small scale/thread combination
    /// without deadlock, and scales its work with `scale`.
    #[test]
    fn kernels_terminate_and_scale(id in arb_benchmark(), tsel in 1usize..4) {
        let threads = if id.is_multithreaded() { tsel } else { 1 };
        // Scales far enough apart that even the coarsest-grained kernel
        // (MolDyn's timestep count) sees different work totals.
        let (small, _, _) = drive(id, threads, 0.02);
        let (large, _, _) = drive(id, threads, 0.3);
        prop_assert!(small > 0);
        prop_assert!(
            large > small,
            "{id}: work must grow with scale ({small} vs {large})"
        );
    }

    /// Kernels are deterministic: the same spec emits the same µop count.
    #[test]
    fn kernels_are_deterministic(id in arb_benchmark()) {
        let threads = if id.is_multithreaded() { 2 } else { 1 };
        let a = drive(id, threads, 0.01);
        let b = drive(id, threads, 0.01);
        prop_assert_eq!(a, b);
    }
}

/// Progress is monotone and ends at 1.0 for every benchmark.
#[test]
fn progress_is_monotone() {
    for id in BenchmarkId::ALL {
        let threads = if id.is_multithreaded() { 2 } else { 1 };
        let mut jvm = JvmProcess::new(1, jvm_config_for(id));
        let mut k = build(WorkloadSpec {
            id,
            threads,
            scale: 0.01,
        });
        k.setup(&mut jvm);
        let mut blocked = vec![false; threads];
        let mut finished = vec![false; threads];
        let mut last = 0.0;
        let mut steps = 0;
        while finished.iter().any(|f| !f) {
            steps += 1;
            assert!(steps < 1_000_000, "runaway {id}");
            for tid in 0..threads {
                if blocked[tid] || finished[tid] {
                    continue;
                }
                let mut out = Vec::new();
                let mut ctx = EmitCtx::new(&mut jvm, &mut out);
                let r = k.step(tid, &mut ctx);
                for &w in &r.wake {
                    blocked[w] = false;
                }
                match r.outcome {
                    StepOutcome::Blocked(_) => blocked[tid] = true,
                    StepOutcome::Finished => finished[tid] = true,
                    StepOutcome::NeedsGc => {
                        jvm.collect();
                    }
                    StepOutcome::Ran => {}
                }
            }
            let p = k.progress();
            assert!(
                p >= last - 1e-9,
                "{id}: progress went backwards {last} -> {p}"
            );
            assert!(p <= 1.0 + 1e-9, "{id}: progress overshot: {p}");
            last = p;
        }
        assert!(last > 0.99, "{id}: progress ended at {last}");
    }
}
