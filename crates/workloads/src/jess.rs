//! `jess` — SPECjvm98 _202_jess: a CLIPS-derived expert system shell.
//!
//! The kernel builds a rete-style discrimination network and propagates
//! facts through it for real: each asserted fact traverses matching nodes,
//! partial matches become freshly-allocated token objects joined against
//! node memories. Microarchitecturally: one of the paper's three *bad
//! partners* — a large compiled-code footprint (hundreds of small rule
//! methods blow through the 12 Kµop trace cache), pointer-chasing loads
//! through heap-resident nodes, data-dependent branches, and a steady
//! allocation rate that keeps the GC thread alive.

use jsmt_isa::Addr;
use jsmt_jvm::{EmitCtx, JvmProcess, MethodId};

use crate::util::{Rng, WorkMeter};
use crate::{Kernel, StepResult};

const NODES: usize = 4096;
const NODE_BYTES: u64 = 64;
const FACTS_PER_STEP: u64 = 2;

#[derive(Debug, Clone)]
struct ReteNode {
    /// Successor node indices (the real network topology).
    next: [u32; 3],
    /// Test constant the fact field is compared against.
    test: u64,
    /// Simulated address of the node object.
    addr: Addr,
}

/// The `jess` kernel. See the module docs.
#[derive(Debug)]
pub struct Jess {
    work: WorkMeter,
    rng: Rng,
    net: Vec<ReteNode>,
    rule_methods: Vec<MethodId>,
    m_assert: Option<MethodId>,
    tokens_live: u64,
    pending_alloc: bool,
    checksum: u64,
    activations: u64,
}

impl Jess {
    /// Create the kernel; `scale` multiplies the fact count.
    pub fn new(scale: f64) -> Self {
        let facts = ((5_200.0 * scale) as u64).max(32);
        Jess {
            work: WorkMeter::new(1, facts),
            rng: Rng::new(0x1E55),
            net: Vec::new(),
            rule_methods: Vec::new(),
            m_assert: None,
            tokens_live: 0,
            pending_alloc: false,
            checksum: 0,
            activations: 0,
        }
    }

    /// Determinism witness.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Rule activations fired so far.
    pub fn activations(&self) -> u64 {
        self.activations
    }
}

impl Kernel for Jess {
    fn name(&self) -> &str {
        "jess"
    }

    fn num_threads(&self) -> usize {
        1
    }

    fn setup(&mut self, jvm: &mut JvmProcess) {
        // The network nodes live on the heap (they are Java objects) and
        // survive collections — reserve them before the mutation phase.
        let mut rng = Rng::new(0x7E7E);
        self.net = (0..NODES)
            .map(|_| {
                let addr = jvm
                    .heap_mut()
                    .alloc(NODE_BYTES)
                    .expect("network must fit the fresh heap");
                ReteNode {
                    next: [
                        rng.below(NODES as u64) as u32,
                        rng.below(NODES as u64) as u32,
                        rng.below(NODES as u64) as u32,
                    ],
                    test: rng.below(1000),
                    addr,
                }
            })
            .collect();
        // ~110 rule methods of ~1.1 KB each: ≈120 KB of compiled code —
        // a trace-cache-hostile footprint (the bad-partner signature).
        self.rule_methods = (0..110)
            .map(|i| jvm.methods_mut().register(&format!("Rule.fire#{i}"), 1100))
            .collect();
        self.m_assert = Some(jvm.methods_mut().register("Rete.assertFact", 1800));
    }

    fn step(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        debug_assert_eq!(tid, 0);
        if !self.work.has_work(0) {
            return StepResult::finished();
        }

        // Retry a token allocation that previously tripped the GC.
        if self.pending_alloc {
            match ctx.alloc(48) {
                Some(addr) => {
                    ctx.store(addr);
                    self.pending_alloc = false;
                    self.tokens_live += 1;
                }
                None => return StepResult::needs_gc(),
            }
        }

        for _ in 0..FACTS_PER_STEP {
            ctx.call(self.m_assert.expect("setup"));
            let field = self.rng.below(1000);
            // Real propagation: walk the network from a root, following
            // the branch chosen by the comparison at each node.
            let mut node = self.rng.below(16) as usize;
            let mut dep = ctx.load(self.net[node].addr);
            for _depth in 0..12 {
                let n = &self.net[node];
                ctx.alu(2);
                let (next, taken) = if field < n.test {
                    (n.next[0], false)
                } else if field == n.test {
                    (n.next[1], true)
                } else {
                    (n.next[2], true)
                };
                ctx.branch(taken, false);
                self.checksum = self.checksum.wrapping_mul(131).wrapping_add(n.test);
                node = next as usize;
                // Pointer chase to the successor node object.
                dep = ctx.load_after(self.net[node].addr, dep);
                // Partial-match token at roughly every other level (the
                // rete's beta memory churn).
                if self.rng.chance(0.5) {
                    let bytes = 48 + self.rng.below(4) * 24;
                    match ctx.alloc(bytes) {
                        Some(addr) => {
                            ctx.store(addr);
                            self.tokens_live += 1;
                        }
                        None => {
                            self.pending_alloc = true;
                            return StepResult::needs_gc();
                        }
                    }
                }
            }

            // A partial match: allocate a token and fire a rule method
            // chosen by the match (exercising the wide code footprint).
            if self.rng.chance(0.6) {
                match ctx.alloc(48) {
                    Some(addr) => {
                        ctx.store(addr);
                        self.tokens_live += 1;
                    }
                    None => {
                        self.pending_alloc = true;
                        return StepResult::needs_gc();
                    }
                }
                let rm =
                    self.rule_methods[(self.checksum % self.rule_methods.len() as u64) as usize];
                ctx.call(rm);
                ctx.alu(12);
                ctx.branch(true, true);
                self.activations += 1;
            }
        }

        if self.work.advance(0, FACTS_PER_STEP) {
            StepResult::ran()
        } else {
            StepResult::finished()
        }
    }

    fn progress(&self) -> f64 {
        self.work.progress()
    }

    /// The network topology is built deterministically by `setup`; only
    /// the meter, RNG and in-flight allocation flag are state.
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        use jsmt_snapshot::Snapshotable;
        self.work.save_state(w);
        self.rng.save_state(w);
        w.put_u64(self.tokens_live);
        w.put_bool(self.pending_alloc);
        w.put_u64(self.checksum);
        w.put_u64(self.activations);
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        use jsmt_snapshot::Snapshotable;
        self.work.restore_state(r)?;
        self.rng.restore_state(r)?;
        self.tokens_live = r.get_u64()?;
        self.pending_alloc = r.get_bool()?;
        self.checksum = r.get_u64()?;
        self.activations = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StepOutcome;
    use jsmt_jvm::JvmConfig;

    fn run(scale: f64) -> (Jess, u64) {
        let mut jvm = JvmProcess::new(1, JvmConfig::default());
        let mut k = Jess::new(scale);
        k.setup(&mut jvm);
        let mut gcs = 0;
        let mut steps = 0;
        loop {
            let mut out = Vec::new();
            let mut ctx = EmitCtx::new(&mut jvm, &mut out);
            let r = k.step(0, &mut ctx);
            steps += 1;
            assert!(steps < 500_000, "runaway");
            match r.outcome {
                StepOutcome::Finished => break,
                StepOutcome::NeedsGc => {
                    jvm.collect();
                    gcs += 1;
                }
                _ => {}
            }
        }
        (k, gcs)
    }

    #[test]
    fn deterministic() {
        let (a, _) = run(0.02);
        let (b, _) = run(0.02);
        assert_eq!(a.checksum(), b.checksum());
        assert_eq!(a.activations(), b.activations());
        assert!(a.activations() > 0);
    }

    #[test]
    fn allocation_pressure_triggers_gc() {
        // A small heap forces collections during a modest run.
        let mut jvm = JvmProcess::new(1, JvmConfig::default().with_heap(1 << 20));
        let mut k = Jess::new(0.5);
        k.setup(&mut jvm);
        let mut gcs = 0;
        for _ in 0..20_000 {
            let mut out = Vec::new();
            let mut ctx = EmitCtx::new(&mut jvm, &mut out);
            match k.step(0, &mut ctx).outcome {
                StepOutcome::NeedsGc => {
                    jvm.collect();
                    gcs += 1;
                }
                StepOutcome::Finished => break,
                _ => {}
            }
        }
        assert!(gcs > 0, "jess must allocate its way into collections");
    }

    #[test]
    fn code_footprint_is_trace_cache_hostile() {
        let mut jvm = JvmProcess::new(1, JvmConfig::default());
        let mut k = Jess::new(0.1);
        k.setup(&mut jvm);
        assert!(
            jvm.methods().code_footprint() > 100 * 1024,
            "bad partners need >100 KB of code, got {}",
            jvm.methods().code_footprint()
        );
    }
}
