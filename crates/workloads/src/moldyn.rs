//! `MolDyn` — Java Grande multithreaded benchmark: an N-body molecular
//! dynamics simulation of particles under a Lennard-Jones potential
//! (paper input: N = 2048).
//!
//! The kernel integrates the real equations: per timestep every thread
//! computes LJ forces for its particle partition against a neighbour
//! window (reading the *shared* position arrays, accumulating into a
//! *thread-private* force array — the JGF decomposition), then all
//! threads meet at a barrier before the position update.
//! Microarchitecturally: FP-heavy with streaming loads; per-thread force
//! arrays mean the aggregate L1 working set grows with the thread count —
//! the mechanism behind the paper's Figure 12 observation that MolDyn's
//! IPC drops at 4 threads due to L1D misses.

use jsmt_isa::Addr;
use jsmt_jvm::{EmitCtx, JvmProcess, MethodId};

use crate::util::{Barrier, BarrierWait, LibCode, WorkMeter};
use crate::{BlockReason, Kernel, StepResult};

const N_PARTICLES: usize = 2048;
const NEIGHBOURS: usize = 24;
const PARTICLES_PER_STEP: usize = 10;

/// The `MolDyn` kernel. See the module docs.
#[derive(Debug)]
pub struct MolDyn {
    threads: usize,
    work: WorkMeter,
    positions: Vec<[f64; 3]>,
    velocities: Vec<[f64; 3]>,
    forces: Vec<Vec<[f64; 3]>>,
    pos_base: Addr,
    force_bases: Vec<Addr>,
    cursor: Vec<usize>,
    phase: Vec<Phase>,
    barrier: Barrier,
    m_force: Option<MethodId>,
    m_update: Option<MethodId>,
    lib: Option<LibCode>,
    timesteps: u64,
    steps_done: Vec<u64>,
    energy: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Forces,
    Update,
}

impl MolDyn {
    /// Create the kernel with `threads` workers; `scale` multiplies the
    /// timestep count.
    pub fn new(threads: usize, scale: f64) -> Self {
        assert!(threads >= 1, "at least one thread");
        let timesteps = ((12.0 * scale) as u64).max(2);
        // Initial FCC-ish lattice, deterministic.
        let positions: Vec<[f64; 3]> = (0..N_PARTICLES)
            .map(|i| {
                let x = (i % 16) as f64;
                let y = ((i / 16) % 16) as f64;
                let z = (i / 256) as f64;
                [x * 1.1, y * 1.1, z * 1.1]
            })
            .collect();
        MolDyn {
            threads,
            work: WorkMeter::new(threads, timesteps),
            velocities: vec![[0.0; 3]; N_PARTICLES],
            forces: vec![vec![[0.0; 3]; N_PARTICLES]; threads],
            positions,
            pos_base: 0,
            force_bases: Vec::new(),
            cursor: vec![0; threads],
            phase: vec![Phase::Forces; threads],
            barrier: Barrier::new(threads),
            m_force: None,
            m_update: None,
            lib: None,
            timesteps,
            steps_done: vec![0; threads],
            energy: 0.0,
        }
    }

    /// Determinism witness: accumulated potential energy.
    pub fn checksum(&self) -> u64 {
        self.energy.to_bits()
    }

    /// Configured timestep count.
    pub fn timesteps(&self) -> u64 {
        self.timesteps
    }

    fn partition(&self, tid: usize) -> (usize, usize) {
        let per = N_PARTICLES / self.threads;
        let lo = tid * per;
        let hi = if tid + 1 == self.threads {
            N_PARTICLES
        } else {
            lo + per
        };
        (lo, hi)
    }
}

impl Kernel for MolDyn {
    fn name(&self) -> &str {
        "MolDyn"
    }

    fn num_threads(&self) -> usize {
        self.threads
    }

    fn setup(&mut self, jvm: &mut JvmProcess) {
        self.pos_base = jvm.alloc_native((N_PARTICLES * 24) as u64, 64);
        // Thread-private force arrays live on the heap (Java objects),
        // 48 KB each: the aggregate L1/L2 pressure grows with threads.
        self.force_bases = (0..self.threads)
            .map(|_| {
                jvm.heap_mut()
                    .alloc((N_PARTICLES * 24) as u64)
                    .expect("fits fresh heap")
            })
            .collect();
        self.m_force = Some(jvm.methods_mut().register("MolDyn.force", 2200));
        self.m_update = Some(jvm.methods_mut().register("MolDyn.update", 1100));
        self.lib = Some(LibCode::register(jvm, "MolDyn", 14, 1100));
    }

    fn step(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        if !self.work.has_work(tid) {
            return StepResult::finished();
        }
        let (lo, hi) = self.partition(tid);

        match self.phase[tid] {
            Phase::Forces => {
                self.lib.as_mut().expect("setup").invoke(ctx, 3);
                ctx.call(self.m_force.expect("setup"));
                let start = lo + self.cursor[tid];
                let end = (start + PARTICLES_PER_STEP).min(hi);
                for i in start..end {
                    let pi = self.positions[i];
                    let dep = ctx.load(self.pos_base + (i * 24) as u64);
                    let mut fx = [0.0f64; 3];
                    for k in 1..=NEIGHBOURS {
                        let j = (i + k) % N_PARTICLES;
                        let pj = self.positions[j];
                        // Real Lennard-Jones force between i and j.
                        let d = [pj[0] - pi[0], pj[1] - pi[1], pj[2] - pi[2]];
                        let r2 = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).max(0.25);
                        let inv6 = 1.0 / (r2 * r2 * r2);
                        let f = 24.0 * inv6 * (2.0 * inv6 - 1.0) / r2;
                        for (a, fa) in fx.iter_mut().enumerate() {
                            *fa += f * d[a];
                        }
                        self.energy += 4.0 * inv6 * (inv6 - 1.0);
                        // Narration: shared position load (sequential
                        // neighbours — streaming), 6 FP ops, cutoff branch.
                        ctx.load_after(self.pos_base + (j * 24) as u64, dep);
                        ctx.fpu(3, true);
                        if k % 3 == 0 {
                            ctx.fp_div(); // inv6 = 1 / (r2 * r2 * r2)
                        }
                        ctx.fpu(2, false);
                        ctx.branch(r2 < 6.25, true);
                    }
                    let fi = &mut self.forces[tid][i];
                    for a in 0..3 {
                        fi[a] += fx[a];
                    }
                    // Private force accumulation store.
                    ctx.store(self.force_bases[tid] + (i * 24) as u64);
                }
                self.cursor[tid] = end - lo;
                if end == hi {
                    self.cursor[tid] = 0;
                    self.phase[tid] = Phase::Update;
                    // Reduction barrier before the update phase.
                    match self.barrier.arrive(tid) {
                        BarrierWait::Wait => {
                            return StepResult::blocked(BlockReason::Barrier);
                        }
                        BarrierWait::Release(wake) => {
                            return StepResult::ran().with_wake(wake);
                        }
                    }
                }
                StepResult::ran()
            }
            Phase::Update => {
                ctx.call(self.m_update.expect("setup"));
                // Velocity-Verlet-ish update of the partition (real).
                for i in lo..hi {
                    let f = self.forces[tid][i];
                    for (a, &fa) in f.iter().enumerate() {
                        self.velocities[i][a] += 0.0005 * fa;
                        self.positions[i][a] += 0.001 * self.velocities[i][a];
                        self.forces[tid][i][a] = 0.0;
                    }
                    if i % 4 == 0 {
                        ctx.load(self.force_bases[tid] + (i * 24) as u64);
                        ctx.fpu(3, false);
                        ctx.store(self.pos_base + (i * 24) as u64);
                    }
                }
                self.phase[tid] = Phase::Forces;
                self.steps_done[tid] += 1;
                if self.work.advance(tid, 1) {
                    StepResult::ran()
                } else {
                    StepResult::finished()
                }
            }
        }
    }

    fn progress(&self) -> f64 {
        self.work.progress()
    }

    /// Positions, velocities and the per-thread force arrays are all
    /// rewritten by the integration and must be carried bit-exactly; the
    /// vector geometries are construction-fixed, so no lengths are
    /// written.
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        use jsmt_snapshot::Snapshotable;
        self.work.save_state(w);
        for p in &self.positions {
            for &v in p {
                w.put_f64(v);
            }
        }
        for p in &self.velocities {
            for &v in p {
                w.put_f64(v);
            }
        }
        for per_thread in &self.forces {
            for p in per_thread {
                for &v in p {
                    w.put_f64(v);
                }
            }
        }
        for &c in &self.cursor {
            w.put_usize(c);
        }
        for &ph in &self.phase {
            w.put_u8(match ph {
                Phase::Forces => 0,
                Phase::Update => 1,
            });
        }
        self.barrier.save_state(w);
        for &s in &self.steps_done {
            w.put_u64(s);
        }
        w.put_f64(self.energy);
        self.lib.as_ref().expect("setup").save_state(w);
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        use jsmt_snapshot::Snapshotable;
        self.work.restore_state(r)?;
        for p in &mut self.positions {
            for v in p.iter_mut() {
                *v = r.get_f64()?;
            }
        }
        for p in &mut self.velocities {
            for v in p.iter_mut() {
                *v = r.get_f64()?;
            }
        }
        for per_thread in &mut self.forces {
            for p in per_thread.iter_mut() {
                for v in p.iter_mut() {
                    *v = r.get_f64()?;
                }
            }
        }
        for c in &mut self.cursor {
            *c = r.get_usize()?;
            if *c > N_PARTICLES {
                return Err(jsmt_snapshot::SnapshotError::Corrupt(
                    "partition cursor out of range",
                ));
            }
        }
        for ph in &mut self.phase {
            *ph = match r.get_u8()? {
                0 => Phase::Forces,
                1 => Phase::Update,
                _ => {
                    return Err(jsmt_snapshot::SnapshotError::Corrupt(
                        "phase tag out of domain",
                    ))
                }
            };
        }
        self.barrier.restore_state(r)?;
        for s in &mut self.steps_done {
            *s = r.get_u64()?;
        }
        self.energy = r.get_f64()?;
        self.lib.as_mut().expect("setup").restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StepOutcome;
    use jsmt_jvm::JvmConfig;

    /// Drive all threads round-robin, honouring barrier blocking.
    fn run(threads: usize, scale: f64) -> MolDyn {
        let mut jvm = JvmProcess::new(1, JvmConfig::default());
        let mut k = MolDyn::new(threads, scale);
        k.setup(&mut jvm);
        let mut blocked = vec![false; threads];
        let mut finished = vec![false; threads];
        let mut guard = 0;
        while finished.iter().any(|f| !f) {
            guard += 1;
            assert!(guard < 2_000_000, "deadlock or runaway");
            for tid in 0..threads {
                if blocked[tid] || finished[tid] {
                    continue;
                }
                let mut out = Vec::new();
                let mut ctx = EmitCtx::new(&mut jvm, &mut out);
                let r = k.step(tid, &mut ctx);
                for &w in &r.wake {
                    blocked[w] = false;
                }
                match r.outcome {
                    StepOutcome::Blocked(_) => blocked[tid] = true,
                    StepOutcome::Finished => finished[tid] = true,
                    StepOutcome::NeedsGc => {
                        jvm.collect();
                    }
                    StepOutcome::Ran => {}
                }
            }
        }
        k
    }

    #[test]
    fn two_threads_complete_all_timesteps() {
        let k = run(2, 0.2);
        assert_eq!(k.progress(), 1.0);
        assert!(k.barrier.generations() >= 2, "barriers must cycle");
    }

    #[test]
    fn physics_is_deterministic_for_fixed_threads() {
        let a = run(2, 0.2);
        let b = run(2, 0.2);
        assert_eq!(a.checksum(), b.checksum());
        assert!(a.energy.is_finite());
        assert_ne!(a.energy, 0.0);
    }

    #[test]
    fn particles_actually_move() {
        let k = run(1, 0.2);
        let moved = k
            .positions
            .iter()
            .enumerate()
            .filter(|(i, p)| {
                let x0 = (*i % 16) as f64 * 1.1;
                (p[0] - x0).abs() > 1e-12
            })
            .count();
        assert!(
            moved > N_PARTICLES / 2,
            "integration must displace particles: {moved}"
        );
    }

    #[test]
    fn partitions_cover_all_particles() {
        let k = MolDyn::new(3, 1.0);
        let mut covered = vec![false; N_PARTICLES];
        for t in 0..3 {
            let (lo, hi) = k.partition(t);
            for c in covered.iter_mut().take(hi).skip(lo) {
                *c = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn sixteen_threads_supported() {
        let k = run(16, 0.1);
        assert_eq!(k.progress(), 1.0);
    }
}
