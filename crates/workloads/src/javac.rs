//! `javac` — SPECjvm98 _213_javac: the JDK 1.0.2 Java compiler.
//!
//! The kernel compiles a synthetic source corpus for real: a lexer
//! producing tokens from a deterministic character stream, a
//! recursive-descent-ish parser that allocates AST nodes, and a bytecode
//! emitter writing to an output buffer. Microarchitecturally: the second
//! of the paper's three *bad partners* — a wide compiled-code footprint
//! (the compiler's many visitor/production methods), an allocation-heavy
//! AST phase that drives GC, irregular branches in the lexer/parser, and
//! periodic file-read system calls.

use jsmt_isa::Addr;
use jsmt_jvm::{EmitCtx, JvmProcess, MethodId};

use crate::util::{Rng, WorkMeter};
use crate::{Kernel, StepResult};

const SRC_BYTES: usize = 96 * 1024;
const DECLS_PER_STEP: u64 = 2;

/// Token classes of the toy language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tok {
    Ident,
    Number,
    Punct,
    Keyword,
    Eof,
}

/// The `javac` kernel. See the module docs.
#[derive(Debug)]
pub struct Javac {
    work: WorkMeter,
    rng: Rng,
    source: Vec<u8>,
    src_pos: usize,
    src_base: Addr,
    out_base: Addr,
    out_pos: u64,
    production_methods: Vec<MethodId>,
    m_lex: Option<MethodId>,
    m_emit: Option<MethodId>,
    pending_alloc: Option<u64>,
    ast_nodes: u64,
    checksum: u64,
}

impl Javac {
    /// Create the kernel; `scale` multiplies the number of declarations
    /// compiled.
    pub fn new(scale: f64) -> Self {
        let decls = ((2_600.0 * scale) as u64).max(16);
        // Deterministic "source code": identifiers, numbers, punctuation.
        let mut rng = Rng::new(0x1AC0DE);
        let mut source = Vec::with_capacity(SRC_BYTES);
        while source.len() < SRC_BYTES {
            match rng.below(4) {
                0 => {
                    for _ in 0..rng.below(8) + 2 {
                        source.push((rng.below(26) + 97) as u8);
                    }
                }
                1 => {
                    for _ in 0..rng.below(5) + 1 {
                        source.push((rng.below(10) + 48) as u8);
                    }
                }
                2 => source.push(b"{}();,=+-*"[rng.below(10) as usize]),
                _ => source.push(b' '),
            }
        }
        Javac {
            work: WorkMeter::new(1, decls),
            rng,
            source,
            src_pos: 0,
            src_base: 0,
            out_base: 0,
            out_pos: 0,
            production_methods: Vec::new(),
            m_lex: None,
            m_emit: None,
            pending_alloc: None,
            ast_nodes: 0,
            checksum: 0,
        }
    }

    /// Determinism witness.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// AST nodes allocated so far.
    pub fn ast_nodes(&self) -> u64 {
        self.ast_nodes
    }

    /// Real lexing of the next token, narrated as byte loads and
    /// classification branches.
    fn lex(&mut self, ctx: &mut EmitCtx<'_>) -> Tok {
        ctx.call(self.m_lex.expect("setup"));
        loop {
            if self.src_pos >= self.source.len() {
                self.src_pos = 0; // corpus wraps (multiple files)
            }
            let start = self.src_pos;
            let c = self.source[self.src_pos];
            let dep = ctx.load(self.src_base + (self.src_pos % SRC_BYTES) as u64);
            self.src_pos += 1;
            let tok = match c {
                b'a'..=b'z' => {
                    // Consume the identifier; keywords are idents of len 2.
                    let mut len = 1;
                    while self.src_pos < self.source.len()
                        && self.source[self.src_pos].is_ascii_lowercase()
                    {
                        ctx.load_after(self.src_base + (self.src_pos % SRC_BYTES) as u64, dep);
                        ctx.branch(true, false);
                        self.src_pos += 1;
                        len += 1;
                    }
                    ctx.branch(false, false);
                    if len == 2 {
                        Tok::Keyword
                    } else {
                        Tok::Ident
                    }
                }
                b'0'..=b'9' => {
                    while self.src_pos < self.source.len()
                        && self.source[self.src_pos].is_ascii_digit()
                    {
                        ctx.alu(1);
                        self.src_pos += 1;
                    }
                    Tok::Number
                }
                b' ' => {
                    ctx.branch(true, true);
                    continue;
                }
                _ => Tok::Punct,
            };
            self.checksum = self.checksum.wrapping_mul(257).wrapping_add(
                self.source[start..self.src_pos]
                    .iter()
                    .map(|&b| b as u64)
                    .sum::<u64>(),
            );
            if self.src_pos >= self.source.len() {
                return Tok::Eof;
            }
            return tok;
        }
    }
}

impl Kernel for Javac {
    fn name(&self) -> &str {
        "javac"
    }

    fn num_threads(&self) -> usize {
        1
    }

    fn setup(&mut self, jvm: &mut JvmProcess) {
        self.src_base = jvm.alloc_native(SRC_BYTES as u64, 64);
        self.out_base = jvm.alloc_native(256 * 1024, 64);
        // ~170 production/visitor methods of ~1.3 KB: ≈220 KB compiled
        // code — the compiler's bad-partner footprint.
        self.production_methods = (0..170)
            .map(|i| {
                jvm.methods_mut()
                    .register(&format!("Parser.parse#{i}"), 1300)
            })
            .collect();
        self.m_lex = Some(jvm.methods_mut().register("Scanner.nextToken", 1500));
        self.m_emit = Some(jvm.methods_mut().register("CodeGen.emit", 1700));
    }

    fn step(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        debug_assert_eq!(tid, 0);
        if !self.work.has_work(0) {
            return StepResult::finished();
        }

        if let Some(bytes) = self.pending_alloc {
            match ctx.alloc(bytes) {
                Some(addr) => {
                    ctx.store(addr);
                    self.pending_alloc = None;
                    self.ast_nodes += 1;
                }
                None => return StepResult::needs_gc(),
            }
        }

        let mut syscalls = 0u32;
        for _ in 0..DECLS_PER_STEP {
            // Parse one declaration: a handful of tokens through
            // productions selected by token class.
            let ntokens = 6 + self.rng.below(8);
            for _ in 0..ntokens {
                let tok = self.lex(ctx);
                let pm = self.production_methods
                    [(self.checksum % self.production_methods.len() as u64) as usize];
                ctx.call(pm);
                ctx.alu(2);
                ctx.branch(tok == Tok::Ident, false);
                // AST node per token (javac's tree is fine-grained).
                if !matches!(tok, Tok::Eof) {
                    let bytes = 96 + self.rng.below(4) * 48;
                    match ctx.alloc(bytes) {
                        Some(addr) => {
                            ctx.store(addr);
                            ctx.store(addr + 8);
                            self.ast_nodes += 1;
                        }
                        None => {
                            self.pending_alloc = Some(bytes);
                            return StepResult::needs_gc();
                        }
                    }
                }
            }
            // Emit bytecode for the declaration.
            ctx.call(self.m_emit.expect("setup"));
            for _ in 0..6 {
                ctx.store(self.out_base + (self.out_pos % (256 * 1024)));
                self.out_pos += 4;
            }
            // Source-file read every ~32 declarations.
            if self.rng.chance(0.03) {
                syscalls += 1;
            }
        }

        if self.work.advance(0, DECLS_PER_STEP) {
            StepResult::ran().with_syscalls(syscalls)
        } else {
            StepResult::finished().with_syscalls(syscalls)
        }
    }

    fn progress(&self) -> f64 {
        self.work.progress()
    }

    /// The source corpus is built deterministically by `new`; position
    /// cursors, the RNG and accumulators are state.
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        use jsmt_snapshot::Snapshotable;
        self.work.save_state(w);
        self.rng.save_state(w);
        w.put_usize(self.src_pos);
        w.put_u64(self.out_pos);
        w.put_opt_u64(self.pending_alloc);
        w.put_u64(self.ast_nodes);
        w.put_u64(self.checksum);
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        use jsmt_snapshot::Snapshotable;
        self.work.restore_state(r)?;
        self.rng.restore_state(r)?;
        self.src_pos = r.get_usize()?;
        if self.src_pos > self.source.len() {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "source position out of range",
            ));
        }
        self.out_pos = r.get_u64()?;
        self.pending_alloc = r.get_opt_u64()?;
        self.ast_nodes = r.get_u64()?;
        self.checksum = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StepOutcome;
    use jsmt_jvm::JvmConfig;

    fn run(scale: f64, heap: u64) -> (Javac, u64, u32) {
        let mut jvm = JvmProcess::new(1, JvmConfig::default().with_heap(heap));
        let mut k = Javac::new(scale);
        k.setup(&mut jvm);
        let (mut gcs, mut sys) = (0u64, 0u32);
        let mut steps = 0;
        loop {
            let mut out = Vec::new();
            let mut ctx = EmitCtx::new(&mut jvm, &mut out);
            let r = k.step(0, &mut ctx);
            sys += r.syscalls;
            steps += 1;
            assert!(steps < 500_000, "runaway");
            match r.outcome {
                StepOutcome::Finished => break,
                StepOutcome::NeedsGc => {
                    jvm.collect();
                    gcs += 1;
                }
                _ => {}
            }
        }
        (k, gcs, sys)
    }

    #[test]
    fn deterministic_compilation() {
        let (a, _, _) = run(0.02, 16 << 20);
        let (b, _, _) = run(0.02, 16 << 20);
        assert_eq!(a.checksum(), b.checksum());
        assert!(a.ast_nodes() > 0);
    }

    #[test]
    fn allocation_heavy_with_small_heap() {
        let (_, gcs, _) = run(0.3, 1 << 20);
        assert!(gcs > 0, "AST churn must trigger GC");
    }

    #[test]
    fn performs_io_syscalls() {
        let (_, _, sys) = run(0.3, 16 << 20);
        assert!(sys > 0, "javac reads source files");
    }

    #[test]
    fn wide_code_footprint() {
        let mut jvm = JvmProcess::new(1, JvmConfig::default());
        let mut k = Javac::new(0.1);
        k.setup(&mut jvm);
        assert!(jvm.methods().code_footprint() > 200 * 1024);
    }
}
