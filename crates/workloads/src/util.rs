//! Shared kernel utilities: deterministic RNG, barriers, work metering.

/// Deterministic splitmix64 RNG for workload data generation.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Rng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

/// Outcome of arriving at a [`Barrier`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BarrierWait {
    /// Not everyone is here; the arriving thread must block.
    Wait,
    /// The arriving thread was last: the listed threads must be woken and
    /// everyone (including the arriver) proceeds.
    Release(Vec<usize>),
}

/// A cyclic barrier over a kernel's threads (MolDyn synchronizes every
/// timestep this way).
#[derive(Debug, Clone)]
pub struct Barrier {
    parties: usize,
    waiting: Vec<usize>,
    generations: u64,
}

impl Barrier {
    /// A barrier for `parties` threads.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        Barrier {
            parties,
            waiting: Vec::new(),
            generations: 0,
        }
    }

    /// Thread `tid` arrives. Single-party barriers always release.
    pub fn arrive(&mut self, tid: usize) -> BarrierWait {
        debug_assert!(!self.waiting.contains(&tid), "double arrival by {tid}");
        if self.waiting.len() + 1 == self.parties {
            let woken = std::mem::take(&mut self.waiting);
            self.generations += 1;
            BarrierWait::Release(woken)
        } else {
            self.waiting.push(tid);
            BarrierWait::Wait
        }
    }

    /// Completed barrier episodes.
    pub fn generations(&self) -> u64 {
        self.generations
    }

    /// Threads currently parked.
    pub fn waiting(&self) -> usize {
        self.waiting.len()
    }
}

/// Tracks completed vs. total abstract work units across threads.
#[derive(Debug, Clone)]
pub struct WorkMeter {
    done: Vec<u64>,
    per_thread: u64,
}

impl WorkMeter {
    /// A meter for `threads` threads of `per_thread` units each.
    pub fn new(threads: usize, per_thread: u64) -> Self {
        WorkMeter {
            done: vec![0; threads],
            per_thread: per_thread.max(1),
        }
    }

    /// Record `n` units for `tid`; returns true while more work remains
    /// for that thread.
    pub fn advance(&mut self, tid: usize, n: u64) -> bool {
        self.done[tid] = (self.done[tid] + n).min(self.per_thread);
        self.done[tid] < self.per_thread
    }

    /// Whether `tid` still has work.
    pub fn has_work(&self, tid: usize) -> bool {
        self.done[tid] < self.per_thread
    }

    /// Units remaining for `tid`.
    pub fn remaining(&self, tid: usize) -> u64 {
        self.per_thread - self.done[tid]
    }

    /// Overall fraction complete.
    pub fn progress(&self) -> f64 {
        let total = self.per_thread * self.done.len() as u64;
        self.done.iter().sum::<u64>() as f64 / total as f64
    }
}

impl jsmt_snapshot::Snapshotable for Rng {
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        w.put_u64(self.state);
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        self.state = r.get_u64()?;
        Ok(())
    }
}

impl jsmt_snapshot::Snapshotable for Barrier {
    /// `parties` is a construction input; the parked set and generation
    /// counter are state.
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        w.put_usize(self.waiting.len());
        for &tid in &self.waiting {
            w.put_usize(tid);
        }
        w.put_u64(self.generations);
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        let n = r.get_len(8)?;
        if n >= self.parties {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "barrier holds more waiters than parties",
            ));
        }
        self.waiting.clear();
        for _ in 0..n {
            let tid = r.get_usize()?;
            if tid >= self.parties {
                return Err(jsmt_snapshot::SnapshotError::Corrupt(
                    "barrier waiter index out of range",
                ));
            }
            self.waiting.push(tid);
        }
        self.generations = r.get_u64()?;
        Ok(())
    }
}

impl jsmt_snapshot::Snapshotable for WorkMeter {
    /// The thread count and per-thread quota are construction inputs.
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        w.put_u64_slice(&self.done);
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        let done = r.get_u64_vec()?;
        if done.len() != self.done.len() {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "work meter thread count mismatch",
            ));
        }
        if done.iter().any(|&d| d > self.per_thread) {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "work meter progress exceeds quota",
            ));
        }
        self.done = done;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_deterministic_and_bounded() {
        let mut a = Rng::new(5);
        let mut b = Rng::new(5);
        for _ in 0..100 {
            let x = a.below(17);
            assert_eq!(x, b.below(17));
            assert!(x < 17);
        }
        let u = a.unit();
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn barrier_releases_on_last_arrival() {
        let mut bar = Barrier::new(3);
        assert_eq!(bar.arrive(0), BarrierWait::Wait);
        assert_eq!(bar.arrive(1), BarrierWait::Wait);
        assert_eq!(bar.waiting(), 2);
        match bar.arrive(2) {
            BarrierWait::Release(w) => {
                assert_eq!(w, vec![0, 1]);
            }
            other => panic!("expected release, got {other:?}"),
        }
        assert_eq!(bar.generations(), 1);
        assert_eq!(bar.waiting(), 0);
    }

    #[test]
    fn single_party_barrier_never_waits() {
        let mut bar = Barrier::new(1);
        assert_eq!(bar.arrive(0), BarrierWait::Release(vec![]));
        assert_eq!(bar.arrive(0), BarrierWait::Release(vec![]));
        assert_eq!(bar.generations(), 2);
    }

    #[test]
    fn work_meter_progress() {
        let mut m = WorkMeter::new(2, 10);
        assert!(m.advance(0, 4));
        assert!(!m.advance(1, 10));
        assert!((m.progress() - 0.7).abs() < 1e-12);
        assert!(m.has_work(0));
        assert!(!m.has_work(1));
        assert_eq!(m.remaining(0), 6);
        assert!(!m.advance(0, 100), "clamps at total");
        assert_eq!(m.progress(), 1.0);
    }
}

/// The benchmark's share of JVM runtime/library code (string handling,
/// math, collections, I/O buffers): a set of small methods invoked
/// round-robin during execution.
///
/// Real Java programs execute tens of kilobytes of library code besides
/// their own hot loops; without it, a kernel's trace-cache footprint is
/// unrealistically tiny and partner-induced trace-cache eviction (the
/// paper's "bad partner" mechanism, §4.2) has nothing to evict.
#[derive(Debug, Clone)]
pub struct LibCode {
    methods: Vec<jsmt_jvm::MethodId>,
    cursor: usize,
}

impl LibCode {
    /// Register `count` library methods of `bytes_each` compiled bytes.
    pub fn register(
        jvm: &mut jsmt_jvm::JvmProcess,
        label: &str,
        count: usize,
        bytes_each: u64,
    ) -> Self {
        let methods = (0..count)
            .map(|i| {
                jvm.methods_mut()
                    .register(&format!("{label}.lib#{i}"), bytes_each)
            })
            .collect();
        LibCode { methods, cursor: 0 }
    }

    /// Invoke the next library method with a small body of `work` ALU
    /// µops. The stride through the method list spreads fetch across the
    /// whole library footprint.
    pub fn invoke(&mut self, ctx: &mut jsmt_jvm::EmitCtx<'_>, work: u32) {
        let m = self.methods[self.cursor % self.methods.len()];
        self.cursor = self.cursor.wrapping_mul(5).wrapping_add(1);
        ctx.call(m);
        ctx.alu(work);
        ctx.branch(true, true);
    }

    /// Serialize the stride cursor (the method list is rebuilt by setup).
    pub fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        w.put_usize(self.cursor);
    }

    /// Restore the stride cursor.
    pub fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        self.cursor = r.get_usize()?;
        Ok(())
    }

    /// Total registered library code bytes.
    pub fn footprint(&self, jvm: &jsmt_jvm::JvmProcess) -> u64 {
        self.methods
            .iter()
            .map(|&m| jvm.methods().body_of(m).1)
            .sum()
    }
}

#[cfg(test)]
mod lib_code_tests {
    use super::*;
    use jsmt_jvm::{EmitCtx, JvmConfig, JvmProcess};

    #[test]
    fn registers_and_invokes() {
        let mut jvm = JvmProcess::new(1, JvmConfig::default());
        let mut lib = LibCode::register(&mut jvm, "Test", 16, 512);
        assert_eq!(lib.footprint(&jvm), 16 * 512);
        let mut out = Vec::new();
        let mut ctx = EmitCtx::new(&mut jvm, &mut out);
        lib.invoke(&mut ctx, 4);
        assert!(!out.is_empty());
    }

    #[test]
    fn cursor_visits_many_methods() {
        let mut jvm = JvmProcess::new(1, JvmConfig::default());
        let mut lib = LibCode::register(&mut jvm, "Test", 32, 256);
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for _ in 0..64 {
            out.clear();
            let before = jvm.methods().len();
            let mut ctx = EmitCtx::new(&mut jvm, &mut out);
            lib.invoke(&mut ctx, 1);
            let _ = before;
            seen.insert(lib.cursor);
        }
        assert!(seen.len() > 16, "stride must spread invocations");
    }
}
