//! `db` — SPECjvm98 _209_db: operations on a memory-resident database.
//!
//! The kernel keeps a real sorted index of record keys and performs the
//! SPEC mix — find, add, delete, modify, and periodic sorts — against a
//! record heap of several megabytes. Microarchitecturally: the largest
//! single-threaded data footprint in the suite (poor locality: binary
//! search hops and record touches scatter across ~3 MB), dependent load
//! chains down the search path, and data-dependent branches — the classic
//! memory-bound SPECjvm98 program.

use jsmt_isa::Addr;
use jsmt_jvm::{EmitCtx, JvmProcess, MethodId};

use crate::util::{LibCode, Rng, WorkMeter};
use crate::{Kernel, StepResult};

const RECORD_BYTES: u64 = 128;
const OPS_PER_STEP: u64 = 3;

/// The `db` kernel. See the module docs.
#[derive(Debug)]
pub struct Db {
    work: WorkMeter,
    rng: Rng,
    keys: Vec<u64>,
    index_base: Addr,
    records_base: Addr,
    n_records: u64,
    m_find: Option<MethodId>,
    m_sort: Option<MethodId>,
    m_modify: Option<MethodId>,
    lib: Option<LibCode>,
    checksum: u64,
    ops_done: u64,
}

impl Db {
    /// Create the kernel; `scale` multiplies both the record count and the
    /// operation count.
    pub fn new(scale: f64) -> Self {
        let n = ((24_576.0 * scale) as u64).clamp(256, 1 << 20);
        let ops = ((6_000.0 * scale) as u64).max(64);
        let mut rng = Rng::new(0xDB);
        let mut keys: Vec<u64> = (0..n).map(|_| rng.next_u64() >> 16).collect();
        keys.sort_unstable();
        keys.dedup();
        Db {
            work: WorkMeter::new(1, ops),
            rng,
            keys,
            index_base: 0,
            records_base: 0,
            n_records: n,
            m_find: None,
            m_sort: None,
            m_modify: None,
            lib: None,
            checksum: 0,
            ops_done: 0,
        }
    }

    /// Determinism witness.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    #[inline]
    fn index_addr(&self, slot: usize) -> Addr {
        self.index_base + slot as u64 * 8
    }

    #[inline]
    fn record_addr(&self, slot: usize) -> Addr {
        self.records_base + (slot as u64 % self.n_records) * RECORD_BYTES
    }

    /// Real binary search, narrated: each probe is a load dependent on the
    /// previous comparison, each comparison a data-dependent branch.
    fn emit_search(&mut self, ctx: &mut EmitCtx<'_>, key: u64) -> Result<usize, usize> {
        let mut lo = 0usize;
        let mut hi = self.keys.len();
        let mut last = ctx.load(self.index_addr((lo + hi) / 2));
        while lo < hi {
            let mid = (lo + hi) / 2;
            let probe = ctx.load_after(self.index_addr(mid), last);
            last = probe;
            ctx.alu(1);
            match self.keys[mid].cmp(&key) {
                std::cmp::Ordering::Less => {
                    ctx.branch(true, false);
                    lo = mid + 1;
                }
                std::cmp::Ordering::Greater => {
                    ctx.branch(false, false);
                    hi = mid;
                }
                std::cmp::Ordering::Equal => {
                    ctx.branch(true, false);
                    return Ok(mid);
                }
            }
        }
        Err(lo)
    }
}

impl Kernel for Db {
    fn name(&self) -> &str {
        "db"
    }

    fn num_threads(&self) -> usize {
        1
    }

    fn setup(&mut self, jvm: &mut JvmProcess) {
        self.index_base = jvm.alloc_native(self.n_records * 8, 64);
        self.records_base = jvm.alloc_native(self.n_records * RECORD_BYTES, 64);
        self.m_find = Some(jvm.methods_mut().register("Database.lookup", 1200));
        self.m_sort = Some(jvm.methods_mut().register("Database.sort", 2200));
        self.m_modify = Some(jvm.methods_mut().register("Database.modify", 900));
        self.lib = Some(LibCode::register(jvm, "Db", 22, 1200));
    }

    fn step(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        debug_assert_eq!(tid, 0);
        if !self.work.has_work(0) {
            return StepResult::finished();
        }

        self.lib.as_mut().expect("setup").invoke(ctx, 4);
        for _ in 0..OPS_PER_STEP {
            self.ops_done += 1;
            let op = self.rng.below(10);
            match op {
                // find (50%): search + touch the record.
                0..=4 => {
                    ctx.call(self.m_find.expect("setup"));
                    let probe_key = if self.rng.chance(0.7) {
                        // Existing key.
                        self.keys[self.rng.below(self.keys.len() as u64) as usize]
                    } else {
                        self.rng.next_u64() >> 16
                    };
                    match self.emit_search(ctx, probe_key) {
                        Ok(slot) => {
                            let r = ctx.load(self.record_addr(slot));
                            ctx.load_after(self.record_addr(slot) + 64, r);
                            self.checksum = self.checksum.wrapping_add(self.keys[slot]);
                        }
                        Err(_) => ctx.alu(2),
                    }
                }
                // modify (30%): search + rewrite fields.
                5..=7 => {
                    ctx.call(self.m_modify.expect("setup"));
                    let slot = self.rng.below(self.keys.len() as u64) as usize;
                    let key = self.keys[slot];
                    if let Ok(found) = self.emit_search(ctx, key) {
                        ctx.store(self.record_addr(found));
                        ctx.store(self.record_addr(found) + 8);
                        self.checksum = self.checksum.wrapping_mul(33).wrapping_add(key);
                    }
                }
                // sort pass (20%): one shell-sort sweep over a 48-record
                // window — real compare/swap work with store traffic.
                _ => {
                    ctx.call(self.m_sort.expect("setup"));
                    let start = self
                        .rng
                        .below((self.keys.len() as u64).saturating_sub(48).max(1))
                        as usize;
                    let window = start..(start + 48).min(self.keys.len());
                    let mut slice: Vec<u64> = self.keys[window.clone()].to_vec();
                    // Narrate an insertion pass while actually doing it.
                    for i in 1..slice.len() {
                        let mut j = i;
                        let r = ctx.load(self.index_addr(start + i));
                        let mut dep = r;
                        while j > 0 && slice[j - 1] > slice[j] {
                            slice.swap(j - 1, j);
                            dep = ctx.load_after(self.index_addr(start + j - 1), dep);
                            ctx.store(self.index_addr(start + j));
                            ctx.branch(true, false);
                            j -= 1;
                        }
                        ctx.branch(false, false);
                    }
                    self.keys[window].copy_from_slice(&slice);
                }
            }
        }

        if self.work.advance(0, OPS_PER_STEP) {
            StepResult::ran()
        } else {
            StepResult::finished()
        }
    }

    fn progress(&self) -> f64 {
        self.work.progress()
    }

    /// The key index is invariant at runtime (it starts sorted and the
    /// sort passes re-sort already-sorted windows), so only the meter,
    /// RNG and accumulators are state.
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        use jsmt_snapshot::Snapshotable;
        self.work.save_state(w);
        self.rng.save_state(w);
        w.put_u64(self.checksum);
        w.put_u64(self.ops_done);
        self.lib.as_ref().expect("setup").save_state(w);
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        use jsmt_snapshot::Snapshotable;
        self.work.restore_state(r)?;
        self.rng.restore_state(r)?;
        self.checksum = r.get_u64()?;
        self.ops_done = r.get_u64()?;
        self.lib.as_mut().expect("setup").restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StepOutcome;
    use jsmt_jvm::JvmConfig;

    fn run(scale: f64) -> (Db, Vec<jsmt_isa::Uop>) {
        let mut jvm = JvmProcess::new(1, JvmConfig::default());
        let mut k = Db::new(scale);
        k.setup(&mut jvm);
        let mut all = Vec::new();
        let mut steps = 0;
        loop {
            let mut out = Vec::new();
            let mut ctx = EmitCtx::new(&mut jvm, &mut out);
            let r = k.step(0, &mut ctx);
            all.extend(out);
            steps += 1;
            assert!(steps < 100_000, "runaway");
            if r.outcome == StepOutcome::Finished {
                break;
            }
        }
        (k, all)
    }

    #[test]
    fn deterministic() {
        let (a, ua) = run(0.02);
        let (b, ub) = run(0.02);
        assert_eq!(a.checksum(), b.checksum());
        assert_eq!(ua.len(), ub.len());
    }

    #[test]
    fn index_stays_sorted_through_sort_passes() {
        let (k, _) = run(0.05);
        assert!(
            k.keys.windows(2).all(|w| w[0] <= w[1]),
            "sort passes must not corrupt order"
        );
    }

    #[test]
    fn search_chains_are_dependent() {
        let (_, uops) = run(0.01);
        let chained_loads = uops
            .iter()
            .filter(|u| u.kind == jsmt_isa::UopKind::Load && u.dep_dist != jsmt_isa::DEP_NONE)
            .count();
        assert!(
            chained_loads > 50,
            "binary search must chain loads, got {chained_loads}"
        );
    }

    #[test]
    fn footprint_is_multi_megabyte() {
        let k = Db::new(1.0);
        let bytes = k.n_records * (RECORD_BYTES + 8);
        assert!(bytes > 2 * 1024 * 1024, "db working set {bytes} too small");
    }
}
