//! # jsmt-workloads
//!
//! The paper's ten Java benchmarks, re-implemented as executable kernels
//! that run their real algorithms over simulated address spaces and
//! narrate them as µop streams through [`jsmt_jvm::EmitCtx`].
//!
//! | Benchmark | Paper source | Kernel computation |
//! |---|---|---|
//! | `compress` | SPECjvm98 (LZW) | real LZW dictionary compression |
//! | `jess` | SPECjvm98 (CLIPS) | rete-style fact propagation network |
//! | `db` | SPECjvm98 | in-memory table: binary search, shell sort, updates |
//! | `javac` | SPECjvm98 (JDK compiler) | lex/parse/emit over a synthetic source corpus |
//! | `mpegaudio` | SPECjvm98 (MP3) | polyphase subband synthesis (windowed dot products) |
//! | `jack` | SPECjvm98 (JavaCC ancestor) | grammar traversal + token/string churn |
//! | `MolDyn` | Java Grande MT (N=2048) | Lennard-Jones N-body with per-timestep barriers |
//! | `MonteCarlo` | Java Grande MT (N=10000) | path pricing with a result-accumulation monitor |
//! | `RayTracer` | Java Grande MT (N=150) | 64-sphere ray tracing, per-thread scene copies |
//! | `PseudoJBB` | SPECjbb2000 variant | warehouse B-tree transactions, fixed count |
//!
//! Working sets, code footprints, allocation rates, FP mixes and
//! synchronization idioms follow the published characterizations of these
//! suites; inputs are synthetic but sized to the paper's parameters scaled
//! by the documented simulation factor (see DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compress;
mod db;
mod jack;
mod javac;
mod jess;
pub mod litmus;
mod moldyn;
mod montecarlo;
mod mpegaudio;
mod pseudojbb;
mod raytracer;
mod registry;
pub mod util;

pub use compress::Compress;
pub use db::Db;
pub use jack::Jack;
pub use javac::Javac;
pub use jess::Jess;
pub use litmus::{BarrierConvoy, LockHandoff, MessagePassing, PingPong, StoreBuffer};
pub use moldyn::MolDyn;
pub use montecarlo::MonteCarlo;
pub use mpegaudio::MpegAudio;
pub use pseudojbb::PseudoJbb;
pub use raytracer::RayTracer;
pub use registry::{build, jvm_config_for, BenchmarkId, WorkloadSpec};

use jsmt_jvm::{EmitCtx, JvmProcess, MonitorId};

/// Why a thread cannot continue right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// Waiting to acquire a contended Java monitor.
    Monitor(MonitorId),
    /// Parked at a barrier until all sibling threads arrive.
    Barrier,
    /// Waiting on (simulated) I/O completion.
    Io,
}

/// Outcome of one [`Kernel::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// Work was emitted; call again.
    Ran,
    /// An allocation hit the GC trigger: run a collection, then re-step
    /// the same thread. µops emitted before the failed allocation are
    /// simply part of the stream; the kernel retries the allocation on the
    /// next step.
    NeedsGc,
    /// The thread must block; the kernel will be re-stepped after a wake.
    Blocked(BlockReason),
    /// This thread's share of the benchmark is complete.
    Finished,
}

/// Result of one step: the outcome plus any threads to wake (monitor
/// hand-off, barrier release) and system calls to charge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepResult {
    /// What happened.
    pub outcome: StepOutcome,
    /// Thread indices (within this kernel) to wake.
    pub wake: Vec<usize>,
    /// Number of system calls the step performed (the system layer
    /// injects the kernel-mode handler µops — `jack`'s output writes,
    /// `javac`'s file reads).
    pub syscalls: u32,
}

impl StepResult {
    /// A plain "ran" result.
    pub fn ran() -> Self {
        StepResult {
            outcome: StepOutcome::Ran,
            wake: Vec::new(),
            syscalls: 0,
        }
    }

    /// A "finished" result.
    pub fn finished() -> Self {
        StepResult {
            outcome: StepOutcome::Finished,
            wake: Vec::new(),
            syscalls: 0,
        }
    }

    /// A "needs GC" result.
    pub fn needs_gc() -> Self {
        StepResult {
            outcome: StepOutcome::NeedsGc,
            wake: Vec::new(),
            syscalls: 0,
        }
    }

    /// A blocked result.
    pub fn blocked(reason: BlockReason) -> Self {
        StepResult {
            outcome: StepOutcome::Blocked(reason),
            wake: Vec::new(),
            syscalls: 0,
        }
    }

    /// Attach threads to wake.
    pub fn with_wake(mut self, wake: Vec<usize>) -> Self {
        self.wake = wake;
        self
    }

    /// Attach a syscall charge.
    pub fn with_syscalls(mut self, n: u32) -> Self {
        self.syscalls = n;
        self
    }
}

/// A benchmark kernel: the real computation, narrated as µops.
///
/// A kernel owns the work of *all* its software threads; the system layer
/// calls [`Kernel::step`] for whichever thread the OS has scheduled,
/// against an [`EmitCtx`] borrowing the owning JVM process.
pub trait Kernel {
    /// The benchmark's display name (paper spelling).
    fn name(&self) -> &str;

    /// Number of software threads this kernel runs.
    fn num_threads(&self) -> usize;

    /// Register methods, allocate static input data, create monitors.
    /// Called once before the first step.
    fn setup(&mut self, jvm: &mut JvmProcess);

    /// Execute a slice (a few hundred µops) of thread `tid`'s work.
    fn step(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult;

    /// Fraction of total work completed, in `[0, 1]`.
    fn progress(&self) -> f64;

    /// The kernel's observable outcome, if it defines one: a compact
    /// label of the values its threads actually read (the litmus family's
    /// observation tuple, e.g. `"r_flag=1,r_data=1"`). Meaningful only
    /// after every thread has finished; `None` for kernels whose output
    /// is a throughput number rather than an interleaving.
    fn observation(&self) -> Option<String> {
        None
    }

    /// Serialize the kernel's mutable execution state (progress meters,
    /// RNG streams, in-flight phase data). Input corpora and everything
    /// else built deterministically by `new`/`setup` are reconstruction
    /// inputs, not state, and are not written.
    fn save_state(&self, w: &mut jsmt_snapshot::Writer);

    /// Restore state captured by [`Kernel::save_state`] into a freshly
    /// constructed (and `setup`-initialized) twin of the same kernel.
    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError>;
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn step_result_builders() {
        assert_eq!(StepResult::ran().outcome, StepOutcome::Ran);
        assert_eq!(StepResult::finished().outcome, StepOutcome::Finished);
        assert_eq!(StepResult::needs_gc().outcome, StepOutcome::NeedsGc);
        let r = StepResult::blocked(BlockReason::Barrier).with_wake(vec![1, 2]);
        assert_eq!(r.outcome, StepOutcome::Blocked(BlockReason::Barrier));
        assert_eq!(r.wake, vec![1, 2]);
    }
}
