//! `RayTracer` — Java Grande multithreaded benchmark: a 3D ray tracer
//! rendering 64 spheres (paper input: N = 150 image resolution).
//!
//! The kernel traces rays for real: per pixel, a primary ray is
//! intersected against all 64 spheres (quadratic discriminant test), the
//! nearest hit shaded with a Lambert term. Work is distributed by rows
//! from a monitor-guarded counter, and — as the paper highlights — *each
//! thread builds its own copy of the scene data* at startup ("each of its
//! threads maintains a copy of scene data as the temporary storage for
//! parallelization"), which raises its OS share and lowers its
//! dual-thread-mode percentage relative to the other JGF codes.

use jsmt_isa::Addr;
use jsmt_jvm::{EmitCtx, JvmProcess, MethodId, MonitorId, MonitorOutcome};

use crate::util::{LibCode, WorkMeter};
use crate::{BlockReason, Kernel, StepResult};

const SPHERES: usize = 64;
const WIDTH: usize = 48;
const PIXELS_PER_STEP: usize = 12;

#[derive(Debug, Clone, Copy)]
struct Sphere {
    c: [f64; 3],
    r: f64,
}

/// The `RayTracer` kernel. See the module docs.
#[derive(Debug)]
pub struct RayTracer {
    threads: usize,
    rows_total: u64,
    scene: Vec<Sphere>,
    scene_base: Addr,
    copy_bases: Vec<Addr>,
    copy_done: Vec<bool>,
    fb_base: Addr,
    m_trace: Option<MethodId>,
    m_shade: Option<MethodId>,
    m_copy: Option<MethodId>,
    lib: Option<LibCode>,
    row_monitor: Option<MonitorId>,
    next_row: u64,
    rows_done: u64,
    cur_row: Vec<Option<u64>>,
    cur_col: Vec<usize>,
    resume_in_dispatch: Vec<bool>,
    pending_copy_alloc: Vec<bool>,
    /// Thread holds the row monitor; released at its next step, so the
    /// critical section occupies simulated time and can contend.
    holding_cs: Vec<bool>,
    finish_after_release: Vec<bool>,
    checksum: u64,
    work: WorkMeter,
}

impl RayTracer {
    /// Create the kernel with `threads` workers; `scale` multiplies the
    /// row count (image height; the paper's N=150 scaled).
    pub fn new(threads: usize, scale: f64) -> Self {
        assert!(threads >= 1);
        let rows = ((150.0 * scale) as u64).max(threads as u64 * 2);
        let scene: Vec<Sphere> = (0..SPHERES)
            .map(|i| {
                let f = i as f64;
                Sphere {
                    c: [
                        (f * 0.37).sin() * 10.0,
                        (f * 0.61).cos() * 10.0,
                        20.0 + (f * 0.13).sin() * 5.0,
                    ],
                    r: 1.0 + (i % 4) as f64 * 0.5,
                }
            })
            .collect();
        RayTracer {
            threads,
            rows_total: rows,
            scene,
            scene_base: 0,
            copy_bases: vec![0; threads],
            copy_done: vec![false; threads],
            fb_base: 0,
            m_trace: None,
            m_shade: None,
            m_copy: None,
            lib: None,
            row_monitor: None,
            next_row: 0,
            rows_done: 0,
            cur_row: vec![None; threads],
            cur_col: vec![0; threads],
            resume_in_dispatch: vec![false; threads],
            pending_copy_alloc: vec![false; threads],
            holding_cs: vec![false; threads],
            finish_after_release: vec![false; threads],
            checksum: 0,
            work: WorkMeter::new(1, rows),
        }
    }

    /// Determinism witness: folded shaded-pixel values.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Real ray-sphere intersection for pixel (row, col); returns shade.
    fn trace_pixel(&self, row: u64, col: usize) -> u64 {
        let dir = [
            (col as f64 / WIDTH as f64) - 0.5,
            (row as f64 / self.rows_total as f64) - 0.5,
            1.0,
        ];
        let mut nearest = f64::INFINITY;
        let mut hit = None;
        for (i, s) in self.scene.iter().enumerate() {
            // |o + t d - c|^2 = r^2 with origin 0.
            let oc = [-s.c[0], -s.c[1], -s.c[2]];
            let a = dir[0] * dir[0] + dir[1] * dir[1] + dir[2] * dir[2];
            let b = 2.0 * (oc[0] * dir[0] + oc[1] * dir[1] + oc[2] * dir[2]);
            let c = oc[0] * oc[0] + oc[1] * oc[1] + oc[2] * oc[2] - s.r * s.r;
            let disc = b * b - 4.0 * a * c;
            if disc > 0.0 {
                let t = (-b - disc.sqrt()) / (2.0 * a);
                if t > 0.0 && t < nearest {
                    nearest = t;
                    hit = Some(i);
                }
            }
        }
        match hit {
            Some(i) => (i as u64 * 37 + (nearest * 16.0) as u64) & 0xFF,
            None => 0,
        }
    }

    /// Acquire the row monitor and take the next row.
    fn dispatch_row(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        let mon = self.row_monitor.expect("setup");
        ctx.atomic(self.fb_base);
        // A thread woken by monitor hand-off already owns the monitor;
        // re-entering would leak a recursion level.
        let already_owner = ctx.process().monitors().owner(mon) == Some(tid as u32);
        if !already_owner {
            match ctx.process().monitors_mut().enter(mon, tid as u32) {
                MonitorOutcome::Contended => {
                    self.resume_in_dispatch[tid] = true;
                    return StepResult::blocked(BlockReason::Monitor(mon));
                }
                MonitorOutcome::Acquired => {}
            }
        }
        self.resume_in_dispatch[tid] = false;
        // Critical section: bump the row counter and build the row's
        // interval/priority structures from the shared scene — JGF
        // RayTracer's serial bookkeeping, the reason its dual-thread-mode
        // percentage is the lowest of the four benchmarks (Table 2).
        ctx.load(self.fb_base);
        ctx.alu(3);
        ctx.store(self.fb_base);
        let mut dep = ctx.load(self.scene_base);
        for i in (0..SPHERES).step_by(4) {
            dep = ctx.load_after(self.scene_base + (i * 64) as u64, dep);
            ctx.fpu(4, i % 2 == 0);
            ctx.alu(2);
            ctx.store(self.fb_base + 8 + (i as u64 % 8) * 8);
        }
        let row = if self.next_row < self.rows_total {
            let r = self.next_row;
            self.next_row += 1;
            Some(r)
        } else {
            None
        };
        // Keep the monitor held until the next step (the CS µops must
        // drain through the pipeline before the unlock becomes visible).
        self.holding_cs[tid] = true;
        match row {
            Some(r) => {
                self.cur_row[tid] = Some(r);
                self.cur_col[tid] = 0;
            }
            None => self.finish_after_release[tid] = true,
        }
        StepResult::ran()
    }

    /// Release the row monitor held since the previous step.
    fn release_cs(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        let mon = self.row_monitor.expect("setup");
        ctx.store(self.fb_base); // unlock store
        let next = ctx.process().monitors_mut().exit(mon, tid as u32);
        let wake = next.map(|t| vec![t as usize]).unwrap_or_default();
        self.holding_cs[tid] = false;
        if self.finish_after_release[tid] {
            StepResult::finished().with_wake(wake)
        } else {
            StepResult::ran().with_wake(wake)
        }
    }
}

impl Kernel for RayTracer {
    fn name(&self) -> &str {
        "RayTracer"
    }

    fn num_threads(&self) -> usize {
        self.threads
    }

    fn setup(&mut self, jvm: &mut JvmProcess) {
        self.scene_base = jvm.alloc_native((SPHERES * 64) as u64, 64);
        self.fb_base = jvm.alloc_native((self.rows_total as usize * WIDTH * 4) as u64 + 64, 64);
        self.m_trace = Some(jvm.methods_mut().register("RayTracer.trace", 2400));
        self.m_shade = Some(jvm.methods_mut().register("RayTracer.shade", 1300));
        self.m_copy = Some(jvm.methods_mut().register("RayTracer.copyScene", 900));
        self.lib = Some(LibCode::register(jvm, "RayTracer", 16, 1100));
        self.row_monitor = Some(jvm.monitors_mut().create());
    }

    fn step(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        // Phase 0: per-thread scene copy (the paper's RayTracer
        // signature): allocate an 8 KB private copy on the heap and copy
        // the spheres into it.
        if !self.copy_done[tid] {
            ctx.call(self.m_copy.expect("setup"));
            if self.copy_bases[tid] == 0 || self.pending_copy_alloc[tid] {
                match ctx.alloc((SPHERES * 64) as u64) {
                    Some(addr) => {
                        self.copy_bases[tid] = addr;
                        self.pending_copy_alloc[tid] = false;
                    }
                    None => {
                        self.pending_copy_alloc[tid] = true;
                        return StepResult::needs_gc();
                    }
                }
            }
            for i in 0..SPHERES {
                let src = ctx.load(self.scene_base + (i * 64) as u64);
                let _ = src;
                ctx.store(self.copy_bases[tid] + (i * 64) as u64);
            }
            self.copy_done[tid] = true;
            return StepResult::ran();
        }

        if self.holding_cs[tid] {
            return self.release_cs(tid, ctx);
        }
        if self.resume_in_dispatch[tid] {
            return self.dispatch_row(tid, ctx);
        }

        match self.cur_row[tid] {
            None => self.dispatch_row(tid, ctx),
            Some(row) => {
                self.lib.as_mut().expect("setup").invoke(ctx, 3);
                ctx.call(self.m_trace.expect("setup"));
                let start = self.cur_col[tid];
                let end = (start + PIXELS_PER_STEP).min(WIDTH);
                for col in start..end {
                    let shade = self.trace_pixel(row, col);
                    // Narration: per-sphere loop over the *private* copy.
                    let mut dep = ctx.load(self.copy_bases[tid]);
                    for i in (0..SPHERES).step_by(4) {
                        dep = ctx.load_after(self.copy_bases[tid] + (i * 64) as u64, dep);
                        ctx.fpu(5, true);
                        ctx.fpu(2, false);
                        if i % 16 == 0 {
                            ctx.fp_div(); // (-b - sqrt(disc)) / 2a
                        }
                        ctx.branch(shade != 0, false);
                    }
                    ctx.call(self.m_shade.expect("setup"));
                    ctx.fpu(3, false);
                    ctx.store(self.fb_base + 64 + (row as usize * WIDTH + col) as u64 * 4);
                    self.checksum = self.checksum.wrapping_mul(31).wrapping_add(shade);
                }
                self.cur_col[tid] = end;
                if end == WIDTH {
                    self.cur_row[tid] = None;
                    self.rows_done += 1;
                    self.work.advance(0, 1);
                }
                StepResult::ran()
            }
        }
    }

    fn progress(&self) -> f64 {
        self.rows_done as f64 / self.rows_total as f64
    }

    /// The private scene copies are heap objects allocated at *runtime*
    /// (not by `setup`), so their base addresses are state and must be
    /// carried.
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        use jsmt_snapshot::Snapshotable;
        self.work.save_state(w);
        for &b in &self.copy_bases {
            w.put_u64(b);
        }
        for &d in &self.copy_done {
            w.put_bool(d);
        }
        w.put_u64(self.next_row);
        w.put_u64(self.rows_done);
        for &row in &self.cur_row {
            w.put_opt_u64(row);
        }
        for &col in &self.cur_col {
            w.put_usize(col);
        }
        for &b in &self.resume_in_dispatch {
            w.put_bool(b);
        }
        for &b in &self.pending_copy_alloc {
            w.put_bool(b);
        }
        for &b in &self.holding_cs {
            w.put_bool(b);
        }
        for &b in &self.finish_after_release {
            w.put_bool(b);
        }
        w.put_u64(self.checksum);
        self.lib.as_ref().expect("setup").save_state(w);
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        use jsmt_snapshot::Snapshotable;
        self.work.restore_state(r)?;
        for b in &mut self.copy_bases {
            *b = r.get_u64()?;
        }
        for d in &mut self.copy_done {
            *d = r.get_bool()?;
        }
        self.next_row = r.get_u64()?;
        if self.next_row > self.rows_total {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "row counter out of range",
            ));
        }
        self.rows_done = r.get_u64()?;
        for row in &mut self.cur_row {
            *row = r.get_opt_u64()?;
        }
        for col in &mut self.cur_col {
            *col = r.get_usize()?;
            if *col > WIDTH {
                return Err(jsmt_snapshot::SnapshotError::Corrupt(
                    "column cursor out of range",
                ));
            }
        }
        for b in &mut self.resume_in_dispatch {
            *b = r.get_bool()?;
        }
        for b in &mut self.pending_copy_alloc {
            *b = r.get_bool()?;
        }
        for b in &mut self.holding_cs {
            *b = r.get_bool()?;
        }
        for b in &mut self.finish_after_release {
            *b = r.get_bool()?;
        }
        self.checksum = r.get_u64()?;
        self.lib.as_mut().expect("setup").restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StepOutcome;
    use jsmt_jvm::JvmConfig;

    fn run(threads: usize, scale: f64) -> RayTracer {
        let mut jvm = JvmProcess::new(1, JvmConfig::default());
        let mut k = RayTracer::new(threads, scale);
        k.setup(&mut jvm);
        let mut blocked = vec![false; threads];
        let mut finished = vec![false; threads];
        let mut guard = 0;
        while finished.iter().any(|f| !f) {
            guard += 1;
            assert!(guard < 2_000_000, "deadlock or runaway");
            for tid in 0..threads {
                if blocked[tid] || finished[tid] {
                    continue;
                }
                let mut out = Vec::new();
                let mut ctx = EmitCtx::new(&mut jvm, &mut out);
                let r = k.step(tid, &mut ctx);
                for &w in &r.wake {
                    blocked[w] = false;
                }
                match r.outcome {
                    StepOutcome::Blocked(_) => blocked[tid] = true,
                    StepOutcome::Finished => finished[tid] = true,
                    StepOutcome::NeedsGc => {
                        jvm.collect();
                    }
                    StepOutcome::Ran => {}
                }
            }
        }
        k
    }

    #[test]
    fn renders_all_rows() {
        let k = run(2, 0.2);
        assert_eq!(k.rows_done, k.rows_total);
        assert!((k.progress() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn image_is_deterministic_and_nontrivial() {
        let a = run(2, 0.2);
        let b = run(2, 0.2);
        assert_eq!(a.checksum(), b.checksum());
        assert_ne!(a.checksum(), 0, "some rays must hit spheres");
    }

    #[test]
    fn every_thread_copies_the_scene() {
        let k = run(3, 0.2);
        for t in 0..3 {
            assert!(k.copy_done[t]);
            assert_ne!(k.copy_bases[t], 0);
        }
        // Copies are distinct heap objects.
        let mut bases = k.copy_bases.clone();
        bases.dedup();
        assert_eq!(bases.len(), 3);
    }

    #[test]
    fn rays_actually_intersect() {
        let k = RayTracer::new(1, 1.0);
        let hits = (0..WIDTH).filter(|&c| k.trace_pixel(75, c) != 0).count();
        assert!(hits > 0, "center row should see spheres");
    }

    #[test]
    fn single_thread_works() {
        let k = run(1, 0.1);
        assert_eq!(k.rows_done, k.rows_total);
    }
}
