//! `PseudoJBB` — the paper's variant of SPECjbb2000 that runs a *fixed
//! number of transactions* (100,000) in multiple warehouses, so execution
//! time is comparable across configurations; the data-initialization
//! phase is excluded, as in the paper (§3.1).
//!
//! The kernel runs real warehouse transactions: each warehouse (one per
//! thread) owns a sorted district/stock index probed by binary search and
//! a multi-megabyte record store; transactions mix new-order, payment,
//! and stock-level work, allocate order objects at a high rate, and
//! occasionally touch the shared company object under a monitor.
//! Microarchitecturally: the only benchmark whose resident set exceeds
//! the 1 MB L2 — the paper's explanation for its L2 and ITLB degradation
//! under Hyper-Threading — plus a wide code footprint and steady GC.

use jsmt_isa::Addr;
use jsmt_jvm::{EmitCtx, JvmProcess, MethodId, MonitorId, MonitorOutcome};

use crate::util::{Rng, WorkMeter};
use crate::{BlockReason, Kernel, StepResult};

const STOCK_ITEMS: u64 = 20_000;
const RECORD_BYTES: u64 = 96;
/// Per-warehouse B-tree inner-node region: the top levels are touched by
/// every probe (intra-transaction reuse), deeper levels spread across
/// ~384 KB. One warehouse's inner nodes fit the 1 MB L2 comfortably; two
/// warehouses' do not — the paper's PseudoJBB L2 signature under HT.
const INNER_BYTES: u64 = 640 * 1024;
const TX_PER_STEP: u64 = 1;
/// Transactions between company-object updates.
const COMPANY_EVERY: u64 = 24;

/// The `PseudoJBB` kernel. See the module docs.
#[derive(Debug)]
pub struct PseudoJbb {
    threads: usize,
    work: WorkMeter,
    rngs: Vec<Rng>,
    stock_keys: Vec<Vec<u64>>,
    index_bases: Vec<Addr>,
    record_bases: Vec<Addr>,
    company_base: Addr,
    tx_methods: Vec<MethodId>,
    m_neworder: Option<MethodId>,
    company_monitor: Option<MonitorId>,
    pending_alloc: Vec<Option<u64>>,
    resume_in_company: Vec<bool>,
    since_company: Vec<u64>,
    tx_done: u64,
    checksum: u64,
}

impl PseudoJbb {
    /// Create the kernel with `threads` warehouses; `scale` multiplies the
    /// transaction count (1.0 ≈ the paper's 100,000 scaled).
    pub fn new(threads: usize, scale: f64) -> Self {
        assert!(threads >= 1);
        let per_thread = (((4_000.0 * scale) as u64).max(threads as u64 * 4)) / threads as u64;
        let mut stock_keys = Vec::with_capacity(threads);
        for w in 0..threads {
            let mut rng = Rng::new(0x1BB + w as u64 * 104_729);
            let mut keys: Vec<u64> = (0..STOCK_ITEMS).map(|_| rng.next_u64() >> 20).collect();
            keys.sort_unstable();
            keys.dedup();
            stock_keys.push(keys);
        }
        PseudoJbb {
            threads,
            work: WorkMeter::new(threads, per_thread),
            rngs: (0..threads).map(|t| Rng::new(0xBB00 + t as u64)).collect(),
            stock_keys,
            index_bases: vec![0; threads],
            record_bases: vec![0; threads],
            company_base: 0,
            tx_methods: Vec::new(),
            m_neworder: None,
            company_monitor: None,
            pending_alloc: vec![None; threads],
            resume_in_company: vec![false; threads],
            since_company: vec![0; threads],
            tx_done: 0,
            checksum: 0,
        }
    }

    /// Determinism witness.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Transactions completed.
    pub fn tx_done(&self) -> u64 {
        self.tx_done
    }

    fn company_update(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        let mon = self.company_monitor.expect("setup");
        ctx.atomic(self.company_base);
        // A thread woken by monitor hand-off already owns the monitor.
        let already_owner = ctx.process().monitors().owner(mon) == Some(tid as u32);
        if !already_owner {
            match ctx.process().monitors_mut().enter(mon, tid as u32) {
                MonitorOutcome::Contended => {
                    self.resume_in_company[tid] = true;
                    return StepResult::blocked(BlockReason::Monitor(mon));
                }
                MonitorOutcome::Acquired => {}
            }
        }
        self.resume_in_company[tid] = false;
        ctx.load(self.company_base);
        ctx.alu(6);
        ctx.store(self.company_base);
        let next = ctx.process().monitors_mut().exit(mon, tid as u32);
        self.since_company[tid] = 0;
        StepResult::ran().with_wake(next.map(|t| vec![t as usize]).unwrap_or_default())
    }

    /// B-tree probe over the warehouse's stock index: a real binary
    /// search over the sorted keys, narrated as descending the tree —
    /// each level's node loads come from a level-sized slice of the
    /// inner-node region (root hot, leaves spread), which reproduces the
    /// index's reuse pyramid.
    fn probe(&mut self, tid: usize, ctx: &mut EmitCtx<'_>, key: u64) -> usize {
        let keys = &self.stock_keys[tid];
        let base = self.index_bases[tid];
        let mut lo = 0usize;
        let mut hi = keys.len();
        let mut level = 0u32;
        let mut level_off = 0u64;
        let mut dep = ctx.load(base);
        while lo < hi {
            let mid = (lo + hi) / 2;
            // Node address: within this level's slice, chosen by the
            // search position. Level spans double until they cover the
            // region.
            let span = (4096u64 << level).min(INNER_BYTES - level_off);
            let node = base + level_off + (mid as u64 * 64) % span;
            dep = ctx.load_after(node, dep);
            ctx.alu(1);
            if keys[mid] < key {
                ctx.branch(true, false);
                lo = mid + 1;
            } else {
                ctx.branch(false, false);
                hi = mid;
            }
            level_off = (level_off + span).min(INNER_BYTES - 4096);
            level += 1;
        }
        lo.min(keys.len() - 1)
    }
}

impl Kernel for PseudoJbb {
    fn name(&self) -> &str {
        "PseudoJBB"
    }

    fn num_threads(&self) -> usize {
        self.threads
    }

    fn setup(&mut self, jvm: &mut JvmProcess) {
        for w in 0..self.threads {
            self.index_bases[w] = jvm.alloc_native(INNER_BYTES, 64);
            self.record_bases[w] = jvm.alloc_native(STOCK_ITEMS * RECORD_BYTES, 64);
        }
        self.company_base = jvm.alloc_native(4096, 64);
        // ~140 transaction-logic methods of ~1.2 KB: the server-code
        // footprint.
        self.tx_methods = (0..140)
            .map(|i| {
                jvm.methods_mut()
                    .register(&format!("TransactionManager.run#{i}"), 1200)
            })
            .collect();
        self.m_neworder = Some(
            jvm.methods_mut()
                .register("NewOrderTransaction.process", 2100),
        );
        self.company_monitor = Some(jvm.monitors_mut().create());
    }

    fn step(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        if self.resume_in_company[tid] {
            return self.company_update(tid, ctx);
        }
        if !self.work.has_work(tid) {
            return StepResult::finished();
        }

        if let Some(bytes) = self.pending_alloc[tid] {
            match ctx.alloc(bytes) {
                Some(addr) => {
                    ctx.store(addr);
                    self.pending_alloc[tid] = None;
                }
                None => return StepResult::needs_gc(),
            }
        }

        for _ in 0..TX_PER_STEP {
            ctx.call(self.m_neworder.expect("setup"));
            let kind = self.rngs[tid].below(3);
            // 3-8 item lines per transaction; 80% of item references go
            // to the warehouse's hot district (TPC-C-style skew). The hot
            // set fits the L2 for one warehouse but not for two — the
            // mechanism behind PseudoJBB's L2 degradation under HT.
            let lines = 3 + self.rngs[tid].below(6);
            let nkeys = self.stock_keys[tid].len() as u64;
            let hot = (nkeys / 2).max(1);
            for _ in 0..lines {
                let key_idx = if self.rngs[tid].chance(0.8) {
                    self.rngs[tid].below(hot)
                } else {
                    self.rngs[tid].below(nkeys)
                };
                let key = self.stock_keys[tid][key_idx as usize];
                let slot = self.probe(tid, ctx, key);
                // Touch the (large, scattered) record store.
                let rec = self.record_bases[tid] + slot as u64 * RECORD_BYTES;
                let r = ctx.load(rec);
                ctx.load_after(rec + 48, r);
                if kind != 2 {
                    ctx.store(rec + 16); // stock decrement / payment post
                }
                self.checksum = self.checksum.wrapping_mul(41).wrapping_add(key);
                // Per-line method dispatch across the wide code footprint.
                let tm = self.tx_methods[(key % self.tx_methods.len() as u64) as usize];
                ctx.call(tm);
                ctx.alu(8);
                ctx.branch(kind == 0, false);
                // Order-line object allocation.
                let bytes = 80 + self.rngs[tid].below(3) * 24;
                match ctx.alloc(bytes) {
                    Some(addr) => {
                        ctx.store(addr);
                        ctx.store(addr + 8);
                    }
                    None => {
                        self.pending_alloc[tid] = Some(bytes);
                        return StepResult::needs_gc();
                    }
                }
            }
            self.tx_done += 1;
            self.since_company[tid] += 1;
        }

        let more = self.work.advance(tid, TX_PER_STEP);
        if self.since_company[tid] >= COMPANY_EVERY {
            let r = self.company_update(tid, ctx);
            if r.outcome != crate::StepOutcome::Ran {
                return r;
            }
            if !more {
                return StepResult::finished().with_wake(r.wake);
            }
            return r;
        }
        if more {
            StepResult::ran()
        } else {
            StepResult::finished()
        }
    }

    fn progress(&self) -> f64 {
        self.work.progress()
    }

    /// The stock indexes are invariant (built by `new`, only probed at
    /// runtime); the meters, RNG streams and monitor bookkeeping are
    /// state.
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        use jsmt_snapshot::Snapshotable;
        self.work.save_state(w);
        for rng in &self.rngs {
            rng.save_state(w);
        }
        for &p in &self.pending_alloc {
            w.put_opt_u64(p);
        }
        for &b in &self.resume_in_company {
            w.put_bool(b);
        }
        for &s in &self.since_company {
            w.put_u64(s);
        }
        w.put_u64(self.tx_done);
        w.put_u64(self.checksum);
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        use jsmt_snapshot::Snapshotable;
        self.work.restore_state(r)?;
        for rng in &mut self.rngs {
            rng.restore_state(r)?;
        }
        for p in &mut self.pending_alloc {
            *p = r.get_opt_u64()?;
        }
        for b in &mut self.resume_in_company {
            *b = r.get_bool()?;
        }
        for s in &mut self.since_company {
            *s = r.get_u64()?;
        }
        self.tx_done = r.get_u64()?;
        self.checksum = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StepOutcome;
    use jsmt_jvm::JvmConfig;

    fn run(threads: usize, scale: f64) -> PseudoJbb {
        let mut jvm = JvmProcess::new(1, JvmConfig::default());
        let mut k = PseudoJbb::new(threads, scale);
        k.setup(&mut jvm);
        let mut blocked = vec![false; threads];
        let mut finished = vec![false; threads];
        let mut guard = 0;
        while finished.iter().any(|f| !f) {
            guard += 1;
            assert!(guard < 2_000_000, "deadlock or runaway");
            for tid in 0..threads {
                if blocked[tid] || finished[tid] {
                    continue;
                }
                let mut out = Vec::new();
                let mut ctx = EmitCtx::new(&mut jvm, &mut out);
                let r = k.step(tid, &mut ctx);
                for &w in &r.wake {
                    blocked[w] = false;
                }
                match r.outcome {
                    StepOutcome::Blocked(_) => blocked[tid] = true,
                    StepOutcome::Finished => finished[tid] = true,
                    StepOutcome::NeedsGc => {
                        jvm.collect();
                    }
                    StepOutcome::Ran => {}
                }
            }
        }
        k
    }

    #[test]
    fn fixed_transaction_count_completes() {
        let k = run(2, 0.05);
        assert_eq!(k.progress(), 1.0);
        assert!(k.tx_done() >= 200 * 2 / 2, "tx {}", k.tx_done());
    }

    #[test]
    fn deterministic_for_fixed_threads() {
        let a = run(2, 0.05);
        let b = run(2, 0.05);
        assert_eq!(a.checksum(), b.checksum());
    }

    #[test]
    fn resident_set_exceeds_l2() {
        let k = PseudoJbb::new(2, 1.0);
        let per_wh = STOCK_ITEMS * (8 + RECORD_BYTES);
        let total = per_wh * k.threads as u64;
        assert!(
            total > 2 * 1024 * 1024,
            "PseudoJBB must not fit the 1 MB L2: {total} bytes"
        );
    }

    #[test]
    fn eight_threads_work() {
        let k = run(8, 0.05);
        assert_eq!(k.progress(), 1.0);
    }
}
