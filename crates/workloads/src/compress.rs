//! `compress` — SPECjvm98 _201_compress: modified-LZW compression.
//!
//! The kernel runs real LZW over a synthetic Markov-ish corpus: a rolling
//! dictionary of (prefix-code, symbol) pairs probed by hash, reset when
//! full, exactly the structure of the SPEC port. Microarchitecturally:
//! small code, a dictionary working set of ~256 KB (well beyond the 8 KB
//! L1D, comfortably inside the 1 MB L2), hash-scattered loads, and
//! data-dependent but mostly-regular branches.

use jsmt_isa::Addr;
use jsmt_jvm::{EmitCtx, JvmProcess, MethodId};

use crate::util::{LibCode, Rng, WorkMeter};
use crate::{Kernel, StepResult};

const DICT_ENTRIES: u64 = 32 * 1024;
const DICT_ENTRY_BYTES: u64 = 8;
const INPUT_WINDOW: u64 = 128 * 1024;
const BYTES_PER_STEP: u64 = 48;

/// The `compress` kernel. See the module docs.
#[derive(Debug)]
pub struct Compress {
    work: WorkMeter,
    input: Vec<u8>,
    pos: usize,
    dict: std::collections::HashMap<(u32, u8), u32>,
    next_code: u32,
    prefix: Option<u32>,
    dict_base: Addr,
    input_base: Addr,
    m_compress: Option<MethodId>,
    m_output: Option<MethodId>,
    lib: Option<LibCode>,
    checksum: u64,
    out_codes: u64,
}

impl Compress {
    /// Create the kernel; `scale` multiplies the input length (1.0 ≈ the
    /// -s100 input scaled by the global simulation factor).
    pub fn new(scale: f64) -> Self {
        let len = ((192.0 * 1024.0 * scale) as usize).max(4096);
        // Markov-ish compressible input: runs of correlated symbols.
        let mut rng = Rng::new(0xC0 & 0xFF | 0xC0FF_EE00);
        let mut input = Vec::with_capacity(len);
        let mut sym = 65u8;
        for _ in 0..len {
            if rng.chance(0.3) {
                sym = (rng.below(26) + 65) as u8;
            }
            input.push(sym);
        }
        Compress {
            work: WorkMeter::new(1, len as u64),
            input,
            pos: 0,
            dict: std::collections::HashMap::new(),
            next_code: 256,
            prefix: None,
            dict_base: 0,
            input_base: 0,
            m_compress: None,
            m_output: None,
            lib: None,
            checksum: 0,
            out_codes: 0,
        }
    }

    /// Fold-of-all-output-codes checksum (determinism witness).
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Number of LZW codes emitted so far.
    pub fn codes_emitted(&self) -> u64 {
        self.out_codes
    }

    #[inline]
    fn dict_slot_addr(&self, prefix: u32, sym: u8) -> Addr {
        let h = (prefix as u64)
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(sym as u64);
        self.dict_base + (h % DICT_ENTRIES) * DICT_ENTRY_BYTES
    }
}

impl Kernel for Compress {
    fn name(&self) -> &str {
        "compress"
    }

    fn num_threads(&self) -> usize {
        1
    }

    fn setup(&mut self, jvm: &mut JvmProcess) {
        self.dict_base = jvm.alloc_native(DICT_ENTRIES * DICT_ENTRY_BYTES, 64);
        self.input_base = jvm.alloc_native(INPUT_WINDOW, 64);
        self.m_compress = Some(jvm.methods_mut().register("Compressor.compress", 1600));
        self.m_output = Some(jvm.methods_mut().register("Compressor.output", 600));
        self.lib = Some(LibCode::register(jvm, "Compress", 24, 1300));
    }

    fn step(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        debug_assert_eq!(tid, 0);
        if !self.work.has_work(0) {
            return StepResult::finished();
        }
        self.lib.as_mut().expect("setup ran").invoke(ctx, 5);
        ctx.call(self.m_compress.expect("setup ran"));

        let end = (self.pos + BYTES_PER_STEP as usize).min(self.input.len());
        let mut processed = 0u64;
        while self.pos < end {
            let sym = self.input[self.pos];
            // Input byte fetch (sequential — prefetch-friendly).
            let in_addr = self.input_base + (self.pos as u64 % INPUT_WINDOW);
            let in_ref = ctx.load(in_addr);
            self.pos += 1;
            processed += 1;

            match self.prefix {
                None => {
                    self.prefix = Some(sym as u32);
                    ctx.alu(1);
                }
                Some(p) => {
                    // Dictionary probe: hashed load dependent on the input
                    // byte.
                    let slot = self.dict_slot_addr(p, sym);
                    ctx.load_after(slot, in_ref);
                    ctx.alu(2);
                    match self.dict.get(&(p, sym)) {
                        Some(&code) => {
                            // Hit: extend the run.
                            ctx.branch(true, true);
                            self.prefix = Some(code);
                        }
                        None => {
                            // Miss: emit the prefix code, insert.
                            ctx.branch(false, true);
                            ctx.call(self.m_output.expect("setup ran"));
                            ctx.alu(3);
                            self.checksum = self.checksum.wrapping_mul(31).wrapping_add(p as u64);
                            self.out_codes += 1;
                            if self.next_code < DICT_ENTRIES as u32 {
                                self.dict.insert((p, sym), self.next_code);
                                ctx.store(slot);
                                self.next_code += 1;
                            } else {
                                // Dictionary full: reset (compress -b block
                                // mode behaviour).
                                self.dict.clear();
                                self.next_code = 256;
                                ctx.alu(4);
                            }
                            self.prefix = Some(sym as u32);
                            ctx.call(self.m_compress.expect("setup ran"));
                        }
                    }
                }
            }
        }

        if self.work.advance(0, processed) {
            StepResult::ran()
        } else {
            // Flush the final prefix code.
            if let Some(p) = self.prefix.take() {
                self.checksum = self.checksum.wrapping_mul(31).wrapping_add(p as u64);
                self.out_codes += 1;
            }
            StepResult::finished()
        }
    }

    fn progress(&self) -> f64 {
        self.work.progress()
    }

    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        use jsmt_snapshot::Snapshotable;
        self.work.save_state(w);
        w.put_usize(self.pos);
        // The dictionary in deterministic (sorted) order.
        let mut entries: Vec<(u64, u32)> = self
            .dict
            .iter()
            .map(|(&(p, s), &c)| ((u64::from(p) << 8) | u64::from(s), c))
            .collect();
        entries.sort_unstable();
        w.put_usize(entries.len());
        for (k, c) in entries {
            w.put_u64(k);
            w.put_u32(c);
        }
        w.put_u32(self.next_code);
        w.put_opt_u64(self.prefix.map(u64::from));
        w.put_u64(self.checksum);
        w.put_u64(self.out_codes);
        self.lib.as_ref().expect("setup ran").save_state(w);
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        use jsmt_snapshot::Snapshotable;
        self.work.restore_state(r)?;
        self.pos = r.get_usize()?;
        if self.pos > self.input.len() {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "input position out of range",
            ));
        }
        let n = r.get_len(12)?;
        self.dict.clear();
        for _ in 0..n {
            let k = r.get_u64()?;
            let c = r.get_u32()?;
            let p = u32::try_from(k >> 8).map_err(|_| {
                jsmt_snapshot::SnapshotError::Corrupt("dictionary prefix out of range")
            })?;
            self.dict.insert((p, (k & 0xFF) as u8), c);
        }
        self.next_code = r.get_u32()?;
        self.prefix =
            match r.get_opt_u64()? {
                None => None,
                Some(v) => Some(u32::try_from(v).map_err(|_| {
                    jsmt_snapshot::SnapshotError::Corrupt("prefix code out of range")
                })?),
            };
        self.checksum = r.get_u64()?;
        self.out_codes = r.get_u64()?;
        self.lib.as_mut().expect("setup ran").restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StepOutcome;
    use jsmt_jvm::JvmConfig;

    fn run_to_completion(scale: f64) -> (Compress, usize) {
        let mut jvm = JvmProcess::new(1, JvmConfig::default());
        let mut k = Compress::new(scale);
        k.setup(&mut jvm);
        let mut out = Vec::new();
        let mut steps = 0;
        loop {
            out.clear();
            let mut ctx = EmitCtx::new(&mut jvm, &mut out);
            let r = k.step(0, &mut ctx);
            steps += 1;
            assert!(steps < 1_000_000, "runaway");
            if r.outcome == StepOutcome::Finished {
                break;
            }
        }
        (k, steps)
    }

    #[test]
    fn compresses_deterministically() {
        let (a, _) = run_to_completion(0.05);
        let (b, _) = run_to_completion(0.05);
        assert_eq!(a.checksum(), b.checksum());
        assert!(a.codes_emitted() > 0);
    }

    #[test]
    fn actually_compresses() {
        let (k, _) = run_to_completion(0.05);
        let input_len = (192.0 * 1024.0 * 0.05) as u64;
        assert!(
            k.codes_emitted() < input_len,
            "LZW must emit fewer codes ({}) than input bytes ({input_len})",
            k.codes_emitted()
        );
    }

    #[test]
    fn progress_reaches_one() {
        let (k, _) = run_to_completion(0.02);
        assert_eq!(k.progress(), 1.0);
    }

    #[test]
    fn emits_reasonable_block_sizes() {
        let mut jvm = JvmProcess::new(1, JvmConfig::default());
        let mut k = Compress::new(0.05);
        k.setup(&mut jvm);
        let mut out = Vec::new();
        let mut ctx = EmitCtx::new(&mut jvm, &mut out);
        let _ = k.step(0, &mut ctx);
        assert!(
            out.len() > 50 && out.len() < 3000,
            "block of {} µops",
            out.len()
        );
    }
}
