//! `MonteCarlo` — Java Grande multithreaded benchmark: financial product
//! pricing by Monte Carlo simulation (paper input: N = 10,000 paths).
//!
//! The kernel prices for real: each path evolves a geometric-Brownian
//! asset trajectory from deterministic Gaussian-ish draws and contributes
//! its payoff to a global accumulator guarded by a Java monitor (the JGF
//! code aggregates results under a lock). Microarchitecturally:
//! embarrassingly parallel FP work with tiny shared state — the benchmark
//! the paper finds scales most cleanly — plus brief monitor episodes that
//! occasionally contend and trap to the futex path.

use jsmt_isa::Addr;
use jsmt_jvm::{EmitCtx, JvmProcess, MethodId, MonitorId, MonitorOutcome};

use crate::util::{LibCode, Rng, WorkMeter};
use crate::{BlockReason, Kernel, StepResult};

const TIME_STEPS: usize = 24;
const PATHS_PER_STEP: u64 = 3;
/// Paths between monitor-guarded result merges.
const MERGE_EVERY: u64 = 16;

/// The `MonteCarlo` kernel. See the module docs.
#[derive(Debug)]
pub struct MonteCarlo {
    threads: usize,
    work: WorkMeter,
    rngs: Vec<Rng>,
    results_base: Addr,
    m_path: Option<MethodId>,
    m_merge: Option<MethodId>,
    lib: Option<LibCode>,
    result_monitor: Option<MonitorId>,
    local_sums: Vec<f64>,
    since_merge: Vec<u64>,
    global_sum: f64,
    paths_done: u64,
    resume_in_merge: Vec<bool>,
}

impl MonteCarlo {
    /// Create the kernel with `threads` workers; `scale` multiplies the
    /// path count (1.0 ≈ the paper's 10,000 scaled).
    pub fn new(threads: usize, scale: f64) -> Self {
        assert!(threads >= 1);
        let per_thread = (((10_000.0 * scale) as u64).max(threads as u64 * 8)) / threads as u64;
        MonteCarlo {
            threads,
            work: WorkMeter::new(threads, per_thread),
            rngs: (0..threads)
                .map(|t| Rng::new(0x3C47 + t as u64 * 7919))
                .collect(),
            results_base: 0,
            m_path: None,
            m_merge: None,
            lib: None,
            result_monitor: None,
            local_sums: vec![0.0; threads],
            since_merge: vec![0; threads],
            global_sum: 0.0,
            paths_done: 0,
            resume_in_merge: vec![false; threads],
        }
    }

    /// Determinism witness: the priced value.
    pub fn checksum(&self) -> u64 {
        self.global_sum.to_bits()
    }

    /// Total paths completed.
    pub fn paths_done(&self) -> u64 {
        self.paths_done
    }

    fn merge(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        let mon = self.result_monitor.expect("setup");
        ctx.atomic(self.results_base);
        // A thread woken by monitor hand-off already owns the monitor.
        let already_owner = ctx.process().monitors().owner(mon) == Some(tid as u32);
        if !already_owner {
            match ctx.process().monitors_mut().enter(mon, tid as u32) {
                MonitorOutcome::Contended => {
                    self.resume_in_merge[tid] = true;
                    return StepResult::blocked(BlockReason::Monitor(mon));
                }
                MonitorOutcome::Acquired => {}
            }
        }
        self.resume_in_merge[tid] = false;
        ctx.call(self.m_merge.expect("setup"));
        // Critical section: fold the thread-local sum into the global.
        self.global_sum += self.local_sums[tid];
        self.local_sums[tid] = 0.0;
        ctx.load(self.results_base);
        ctx.fpu(1, false);
        ctx.store(self.results_base);
        let next = ctx.process().monitors_mut().exit(mon, tid as u32);
        let wake = next.map(|t| vec![t as usize]).unwrap_or_default();
        self.since_merge[tid] = 0;
        StepResult::ran().with_wake(wake)
    }
}

impl Kernel for MonteCarlo {
    fn name(&self) -> &str {
        "MonteCarlo"
    }

    fn num_threads(&self) -> usize {
        self.threads
    }

    fn setup(&mut self, jvm: &mut JvmProcess) {
        self.results_base = jvm.alloc_native(128 * 1024, 64);
        self.m_path = Some(jvm.methods_mut().register("PriceStock.run", 1900));
        self.m_merge = Some(jvm.methods_mut().register("ToResult.reduce", 700));
        self.lib = Some(LibCode::register(jvm, "MonteCarlo", 14, 1100));
        self.result_monitor = Some(jvm.monitors_mut().create());
    }

    fn step(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        // A thread woken while waiting for the result monitor resumes in
        // the merge, not in path generation.
        if self.resume_in_merge[tid] {
            return self.merge(tid, ctx);
        }
        if !self.work.has_work(tid) {
            // Final merge of the residue, then done.
            if self.local_sums[tid] != 0.0 {
                let r = self.merge(tid, ctx);
                if r.outcome != crate::StepOutcome::Ran {
                    return r;
                }
            }
            return StepResult::finished();
        }

        self.lib.as_mut().expect("setup").invoke(ctx, 3);
        ctx.call(self.m_path.expect("setup"));
        for _ in 0..PATHS_PER_STEP {
            // Real GBM path: S' = S * exp(mu + sigma * Z).
            let mut s = 100.0f64;
            for t in 0..TIME_STEPS {
                // Z ~ sum of uniforms (Irwin-Hall), deterministic.
                let z = self.rngs[tid].unit() + self.rngs[tid].unit() + self.rngs[tid].unit() - 1.5;
                s *= (0.0001 + 0.02 * z).exp();
                // Narration: RNG ALU chain, exp-approx FP chain, table
                // load per step.
                ctx.alu_chain(4);
                ctx.fpu(4, t % 2 == 0);
                if t % 4 == 0 {
                    ctx.fp_div(); // exp() range reduction
                }
                // Per-thread coefficient block (6 KB each): fits the L1
                // alone, conflicts when two threads co-reside.
                let slice = self.results_base + tid as u64 * 6144;
                ctx.load(slice + ((t * 64) as u64 % 6144));
            }
            let payoff = (s - 100.0).max(0.0);
            self.local_sums[tid] += payoff;
            self.paths_done += 1;
            self.since_merge[tid] += 1;
            // Store the path result into the results table.
            ctx.store(self.results_base + (self.paths_done * 8) % (128 * 1024));
            ctx.branch(payoff > 0.0, false);
        }

        let more = self.work.advance(tid, PATHS_PER_STEP);
        if self.since_merge[tid] >= MERGE_EVERY {
            let r = self.merge(tid, ctx);
            if r.outcome != crate::StepOutcome::Ran {
                return r;
            }
            if !more {
                return StepResult::finished().with_wake(r.wake);
            }
            return r;
        }
        if more {
            StepResult::ran()
        } else if self.local_sums[tid] != 0.0 {
            self.merge(tid, ctx)
        } else {
            StepResult::finished()
        }
    }

    fn progress(&self) -> f64 {
        self.work.progress()
    }

    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        use jsmt_snapshot::Snapshotable;
        self.work.save_state(w);
        for rng in &self.rngs {
            rng.save_state(w);
        }
        for &s in &self.local_sums {
            w.put_f64(s);
        }
        for &m in &self.since_merge {
            w.put_u64(m);
        }
        w.put_f64(self.global_sum);
        w.put_u64(self.paths_done);
        for &b in &self.resume_in_merge {
            w.put_bool(b);
        }
        self.lib.as_ref().expect("setup").save_state(w);
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        use jsmt_snapshot::Snapshotable;
        self.work.restore_state(r)?;
        for rng in &mut self.rngs {
            rng.restore_state(r)?;
        }
        for s in &mut self.local_sums {
            *s = r.get_f64()?;
        }
        for m in &mut self.since_merge {
            *m = r.get_u64()?;
        }
        self.global_sum = r.get_f64()?;
        self.paths_done = r.get_u64()?;
        for b in &mut self.resume_in_merge {
            *b = r.get_bool()?;
        }
        self.lib.as_mut().expect("setup").restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StepOutcome;
    use jsmt_jvm::JvmConfig;

    fn run(threads: usize, scale: f64) -> MonteCarlo {
        let mut jvm = JvmProcess::new(1, JvmConfig::default());
        let mut k = MonteCarlo::new(threads, scale);
        k.setup(&mut jvm);
        let mut blocked = vec![false; threads];
        let mut finished = vec![false; threads];
        let mut guard = 0;
        while finished.iter().any(|f| !f) {
            guard += 1;
            assert!(guard < 2_000_000, "deadlock or runaway");
            for tid in 0..threads {
                if blocked[tid] || finished[tid] {
                    continue;
                }
                let mut out = Vec::new();
                let mut ctx = EmitCtx::new(&mut jvm, &mut out);
                let r = k.step(tid, &mut ctx);
                for &w in &r.wake {
                    blocked[w] = false;
                }
                match r.outcome {
                    StepOutcome::Blocked(_) => blocked[tid] = true,
                    StepOutcome::Finished => finished[tid] = true,
                    StepOutcome::NeedsGc => {
                        jvm.collect();
                    }
                    StepOutcome::Ran => {}
                }
            }
        }
        k
    }

    #[test]
    fn prices_deterministically() {
        let a = run(2, 0.05);
        let b = run(2, 0.05);
        assert_eq!(a.checksum(), b.checksum());
        assert!(a.global_sum.is_finite());
        assert!(a.global_sum > 0.0, "some paths must pay off");
    }

    #[test]
    fn all_paths_accounted() {
        let k = run(4, 0.05);
        assert_eq!(k.progress(), 1.0);
        assert!(k.paths_done() >= 480, "paths done {}", k.paths_done());
    }

    #[test]
    fn local_sums_fully_merged() {
        let k = run(3, 0.05);
        for (t, s) in k.local_sums.iter().enumerate() {
            assert_eq!(*s, 0.0, "thread {t} left residue");
        }
    }

    #[test]
    fn single_thread_works() {
        let k = run(1, 0.02);
        assert_eq!(k.progress(), 1.0);
    }
}
