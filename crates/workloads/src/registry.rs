//! Benchmark registry: names, construction, per-benchmark JVM tuning.

use jsmt_jvm::JvmConfig;

use crate::{
    BarrierConvoy, Compress, Db, Jack, Javac, Jess, Kernel, LockHandoff, MessagePassing, MolDyn,
    MonteCarlo, MpegAudio, PingPong, PseudoJbb, RayTracer, StoreBuffer,
};

/// The paper's ten benchmarks (Table 1), plus the litmus family of
/// sync-bound correctness shapes (see [`crate::litmus`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BenchmarkId {
    /// SPECjvm98 _201_compress.
    Compress,
    /// SPECjvm98 _202_jess.
    Jess,
    /// SPECjvm98 _209_db.
    Db,
    /// SPECjvm98 _213_javac.
    Javac,
    /// SPECjvm98 _222_mpegaudio.
    Mpegaudio,
    /// SPECjvm98 _228_jack.
    Jack,
    /// Java Grande MolDyn (N=2048).
    MolDyn,
    /// Java Grande MonteCarlo (N=10000).
    MonteCarlo,
    /// Java Grande RayTracer (N=150).
    RayTracer,
    /// PseudoJBB (SPECjbb2000 variant, fixed transactions).
    PseudoJbb,
    /// Litmus: message-passing shape (flag/data publication).
    LitmusMp,
    /// Litmus: store-buffer shape (cross stores then loads).
    LitmusSb,
    /// Litmus: lock-handoff shape (one monitor circulated N ways).
    LitmusHandoff,
    /// Litmus: barrier-convoy shape (cyclic barrier, phase agreement).
    LitmusConvoy,
    /// Litmus: wait/notify ping-pong shape (token passing).
    LitmusPingPong,
}

impl BenchmarkId {
    /// Every registered workload: the ten Table 1 benchmarks in paper
    /// order, then the litmus shapes. Order is append-only — [`Self::tag`]
    /// is a position in this array and tags live in snapshots.
    pub const ALL: [BenchmarkId; 15] = [
        BenchmarkId::Compress,
        BenchmarkId::Jess,
        BenchmarkId::Db,
        BenchmarkId::Javac,
        BenchmarkId::Mpegaudio,
        BenchmarkId::Jack,
        BenchmarkId::MolDyn,
        BenchmarkId::MonteCarlo,
        BenchmarkId::RayTracer,
        BenchmarkId::PseudoJbb,
        BenchmarkId::LitmusMp,
        BenchmarkId::LitmusSb,
        BenchmarkId::LitmusHandoff,
        BenchmarkId::LitmusConvoy,
        BenchmarkId::LitmusPingPong,
    ];

    /// The litmus concurrency-correctness shapes.
    pub const LITMUS: [BenchmarkId; 5] = [
        BenchmarkId::LitmusMp,
        BenchmarkId::LitmusSb,
        BenchmarkId::LitmusHandoff,
        BenchmarkId::LitmusConvoy,
        BenchmarkId::LitmusPingPong,
    ];

    /// The nine benchmarks the paper uses single-threaded in §4.2/§4.3
    /// (the six SPECjvm98 programs plus the three JGF kernels at one
    /// thread; PseudoJBB is excluded there).
    pub const SINGLE_THREADED: [BenchmarkId; 9] = [
        BenchmarkId::Compress,
        BenchmarkId::Jess,
        BenchmarkId::Db,
        BenchmarkId::Javac,
        BenchmarkId::Mpegaudio,
        BenchmarkId::Jack,
        BenchmarkId::MolDyn,
        BenchmarkId::MonteCarlo,
        BenchmarkId::RayTracer,
    ];

    /// The four multithreaded benchmarks of §4.1 (Table 2, Figures 1–7).
    pub const MULTITHREADED: [BenchmarkId; 4] = [
        BenchmarkId::MolDyn,
        BenchmarkId::MonteCarlo,
        BenchmarkId::RayTracer,
        BenchmarkId::PseudoJbb,
    ];

    /// Paper spelling of the name.
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkId::Compress => "compress",
            BenchmarkId::Jess => "jess",
            BenchmarkId::Db => "db",
            BenchmarkId::Javac => "javac",
            BenchmarkId::Mpegaudio => "mpegaudio",
            BenchmarkId::Jack => "jack",
            BenchmarkId::MolDyn => "MolDyn",
            BenchmarkId::MonteCarlo => "MonteCarlo",
            BenchmarkId::RayTracer => "RayTracer",
            BenchmarkId::PseudoJbb => "PseudoJBB",
            BenchmarkId::LitmusMp => "litmus-mp",
            BenchmarkId::LitmusSb => "litmus-sb",
            BenchmarkId::LitmusHandoff => "litmus-handoff",
            BenchmarkId::LitmusConvoy => "litmus-convoy",
            BenchmarkId::LitmusPingPong => "litmus-pingpong",
        }
    }

    /// Parse a paper-spelled (case-insensitive) name.
    pub fn parse(s: &str) -> Option<BenchmarkId> {
        Self::ALL
            .iter()
            .copied()
            .find(|b| b.name().eq_ignore_ascii_case(s))
    }

    /// Stable small-integer tag for snapshots (position in [`Self::ALL`]).
    pub fn tag(self) -> u8 {
        Self::ALL
            .iter()
            .position(|&b| b == self)
            .expect("every benchmark is in ALL") as u8
    }

    /// Inverse of [`Self::tag`]; `None` for out-of-range tags.
    pub fn from_tag(tag: u8) -> Option<BenchmarkId> {
        Self::ALL.get(tag as usize).copied()
    }

    /// Whether the benchmark accepts a thread-count parameter.
    pub fn is_multithreaded(self) -> bool {
        Self::MULTITHREADED.contains(&self) || self.is_litmus()
    }

    /// Whether this is a litmus concurrency-correctness shape.
    pub fn is_litmus(self) -> bool {
        Self::LITMUS.contains(&self)
    }

    /// The canonical thread count for the litmus shapes (the count their
    /// allowed-outcome tables are written for); 1 or the paper default
    /// elsewhere.
    pub fn default_threads(self) -> usize {
        match self {
            BenchmarkId::LitmusMp | BenchmarkId::LitmusSb | BenchmarkId::LitmusPingPong => 2,
            BenchmarkId::LitmusHandoff | BenchmarkId::LitmusConvoy => 3,
            _ => 1,
        }
    }

    /// The paper's three "bad partners" (§4.2): pairings with these slow
    /// other programs down because of trace-cache pressure.
    pub fn is_bad_partner(self) -> bool {
        matches!(
            self,
            BenchmarkId::Jess | BenchmarkId::Javac | BenchmarkId::Jack
        )
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete workload to run: benchmark, thread count, work scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Which benchmark.
    pub id: BenchmarkId,
    /// Software threads (forced to 1 for the SPECjvm98 programs).
    pub threads: usize,
    /// Work multiplier (1.0 = the scaled paper input).
    pub scale: f64,
}

impl WorkloadSpec {
    /// A single-threaded run at the default scale.
    pub fn single(id: BenchmarkId) -> Self {
        WorkloadSpec {
            id,
            threads: 1,
            scale: 1.0,
        }
    }

    /// A multithreaded run at the default scale.
    pub fn threaded(id: BenchmarkId, threads: usize) -> Self {
        WorkloadSpec {
            id,
            threads,
            scale: 1.0,
        }
    }

    /// Builder-style: set the scale.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }
}

/// Build the kernel for a spec.
///
/// # Panics
///
/// Panics if a thread count other than 1 is requested for a
/// single-threaded benchmark.
pub fn build(spec: WorkloadSpec) -> Box<dyn Kernel> {
    let WorkloadSpec { id, threads, scale } = spec;
    if !id.is_multithreaded() {
        assert_eq!(threads, 1, "{id} is single-threaded");
    }
    match id {
        BenchmarkId::Compress => Box::new(Compress::new(scale)),
        BenchmarkId::Jess => Box::new(Jess::new(scale)),
        BenchmarkId::Db => Box::new(Db::new(scale)),
        BenchmarkId::Javac => Box::new(Javac::new(scale)),
        BenchmarkId::Mpegaudio => Box::new(MpegAudio::new(scale)),
        BenchmarkId::Jack => Box::new(Jack::new(scale)),
        BenchmarkId::MolDyn => Box::new(MolDyn::new(threads, scale)),
        BenchmarkId::MonteCarlo => Box::new(MonteCarlo::new(threads, scale)),
        BenchmarkId::RayTracer => Box::new(RayTracer::new(threads, scale)),
        BenchmarkId::PseudoJbb => Box::new(PseudoJbb::new(threads, scale)),
        BenchmarkId::LitmusMp => Box::new(MessagePassing::new(threads, scale)),
        BenchmarkId::LitmusSb => Box::new(StoreBuffer::new(threads, scale)),
        BenchmarkId::LitmusHandoff => Box::new(LockHandoff::new(threads, scale)),
        BenchmarkId::LitmusConvoy => Box::new(BarrierConvoy::new(threads, scale)),
        BenchmarkId::LitmusPingPong => Box::new(PingPong::new(threads, scale)),
    }
}

/// Per-benchmark JVM tuning: heap sizes and survival rates that keep each
/// program's GC behaviour in its published band (allocation-heavy
/// programs collect often; numeric kernels barely allocate).
pub fn jvm_config_for(id: BenchmarkId) -> JvmConfig {
    let base = JvmConfig::default();
    match id {
        // String/AST churn with low survival: frequent cheap GCs.
        BenchmarkId::Jack => base
            .with_heap(3 << 20)
            .with_survival(0.15)
            .with_jit_threshold(3),
        BenchmarkId::Javac => base
            .with_heap(2 << 20)
            .with_survival(0.25)
            .with_jit_threshold(3),
        BenchmarkId::Jess => base
            .with_heap(2 << 20)
            .with_survival(0.3)
            .with_jit_threshold(3),
        // Server allocation with moderate survival.
        BenchmarkId::PseudoJbb => base.with_heap(2 << 20).with_survival(0.4),
        // Numeric kernels: roomy heap, few collections. The litmus
        // shapes barely allocate either — the defaults keep GC out of
        // their schedules.
        BenchmarkId::Compress
        | BenchmarkId::Db
        | BenchmarkId::Mpegaudio
        | BenchmarkId::MolDyn
        | BenchmarkId::MonteCarlo
        | BenchmarkId::RayTracer
        | BenchmarkId::LitmusMp
        | BenchmarkId::LitmusSb
        | BenchmarkId::LitmusHandoff
        | BenchmarkId::LitmusConvoy
        | BenchmarkId::LitmusPingPong => base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsmt_jvm::{EmitCtx, JvmProcess};

    #[test]
    fn names_round_trip() {
        for id in BenchmarkId::ALL {
            assert_eq!(BenchmarkId::parse(id.name()), Some(id));
        }
        assert_eq!(BenchmarkId::parse("MOLDYN"), Some(BenchmarkId::MolDyn));
        assert_eq!(BenchmarkId::parse("nosuch"), None);
    }

    #[test]
    fn bad_partners_are_the_papers_three() {
        let bad: Vec<_> = BenchmarkId::ALL
            .iter()
            .filter(|b| b.is_bad_partner())
            .map(|b| b.name())
            .collect();
        assert_eq!(bad, vec!["jess", "javac", "jack"]);
    }

    #[test]
    fn build_constructs_every_benchmark() {
        for id in BenchmarkId::ALL {
            let threads = if id.is_multithreaded() { 2 } else { 1 };
            let spec = WorkloadSpec {
                id,
                threads,
                scale: 0.01,
            };
            let mut k = build(spec);
            assert_eq!(k.name(), id.name());
            assert_eq!(k.num_threads(), threads);
            // Setup + one step must emit µops without panicking.
            let mut jvm = JvmProcess::new(1, jvm_config_for(id));
            k.setup(&mut jvm);
            let mut out = Vec::new();
            let mut ctx = EmitCtx::new(&mut jvm, &mut out);
            let _ = k.step(0, &mut ctx);
            assert!(!out.is_empty(), "{id} emitted nothing");
        }
    }

    #[test]
    #[should_panic(expected = "single-threaded")]
    fn threads_rejected_for_spec_programs() {
        let _ = build(WorkloadSpec {
            id: BenchmarkId::Db,
            threads: 2,
            scale: 1.0,
        });
    }

    #[test]
    fn litmus_tags_are_appended_after_the_paper_ten() {
        // Tags live in snapshots: the ten paper benchmarks keep 0..=9 and
        // the litmus shapes take 10..=14, forever.
        for (i, id) in BenchmarkId::LITMUS.iter().enumerate() {
            assert_eq!(id.tag(), 10 + i as u8);
            assert!(id.is_litmus());
            assert!(id.is_multithreaded());
            assert!(id.default_threads() >= 2);
            assert_eq!(BenchmarkId::parse(id.name()), Some(*id));
        }
        assert!(!BenchmarkId::MolDyn.is_litmus());
        assert_eq!(BenchmarkId::Compress.default_threads(), 1);
    }

    #[test]
    fn single_threaded_list_excludes_pseudojbb() {
        assert!(!BenchmarkId::SINGLE_THREADED.contains(&BenchmarkId::PseudoJbb));
        assert_eq!(BenchmarkId::SINGLE_THREADED.len(), 9);
    }
}
