//! `jack` — SPECjvm98 _228_jack: a parser generator (JavaCC ancestor).
//!
//! The kernel generates a parser from a synthetic grammar for real: it
//! repeatedly walks production rules, expands alternatives, materializes
//! token/string objects at a furious rate, and writes the generated parser
//! out (the SPEC run regenerates its output 16 times, hence the steady
//! stream of write system calls). Microarchitecturally: the third and
//! worst of the paper's *bad partners* — the largest compiled-code
//! footprint in the suite, the highest allocation rate (string churn),
//! irregular branches, and kernel time from I/O.

use jsmt_isa::Addr;
use jsmt_jvm::{EmitCtx, JvmProcess, MethodId};

use crate::util::{Rng, WorkMeter};
use crate::{Kernel, StepResult};

const PRODUCTIONS: usize = 256;
const EXPANSIONS_PER_STEP: u64 = 2;

#[derive(Debug, Clone)]
struct Production {
    /// Alternative expansions; each entry lists successor productions.
    alts: Vec<Vec<u16>>,
}

/// The `jack` kernel. See the module docs.
#[derive(Debug)]
pub struct Jack {
    work: WorkMeter,
    rng: Rng,
    grammar: Vec<Production>,
    visitor_methods: Vec<MethodId>,
    m_expand: Option<MethodId>,
    m_write: Option<MethodId>,
    table_base: Addr,
    out_base: Addr,
    out_pos: u64,
    pending_alloc: Option<u64>,
    strings_made: u64,
    checksum: u64,
}

impl Jack {
    /// Create the kernel; `scale` multiplies the expansion count (the SPEC
    /// run regenerates the parser 16 times; scaling covers that loop).
    pub fn new(scale: f64) -> Self {
        let expansions = ((3_600.0 * scale) as u64).max(16);
        let mut rng = Rng::new(0x7ACC);
        let grammar = (0..PRODUCTIONS)
            .map(|_| {
                let nalts = 1 + rng.below(4) as usize;
                Production {
                    alts: (0..nalts)
                        .map(|_| {
                            (0..1 + rng.below(4))
                                .map(|_| rng.below(PRODUCTIONS as u64) as u16)
                                .collect()
                        })
                        .collect(),
                }
            })
            .collect();
        Jack {
            work: WorkMeter::new(1, expansions),
            rng,
            grammar,
            visitor_methods: Vec::new(),
            m_expand: None,
            m_write: None,
            table_base: 0,
            out_base: 0,
            out_pos: 0,
            pending_alloc: None,
            strings_made: 0,
            checksum: 0,
        }
    }

    /// Determinism witness.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// String/token objects allocated.
    pub fn strings_made(&self) -> u64 {
        self.strings_made
    }
}

impl Kernel for Jack {
    fn name(&self) -> &str {
        "jack"
    }

    fn num_threads(&self) -> usize {
        1
    }

    fn setup(&mut self, jvm: &mut JvmProcess) {
        self.table_base = jvm.alloc_native((PRODUCTIONS * 64) as u64, 64);
        self.out_base = jvm.alloc_native(512 * 1024, 64);
        // ~200 generator/visitor methods of ~1.4 KB: ≈280 KB of compiled
        // code — the largest footprint in the suite.
        self.visitor_methods = (0..200)
            .map(|i| jvm.methods_mut().register(&format!("Jack.visit#{i}"), 1400))
            .collect();
        self.m_expand = Some(jvm.methods_mut().register("Jack.expand", 2000));
        self.m_write = Some(jvm.methods_mut().register("Jack.writeOutput", 1200));
    }

    fn step(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        debug_assert_eq!(tid, 0);
        if !self.work.has_work(0) {
            return StepResult::finished();
        }

        if let Some(bytes) = self.pending_alloc {
            match ctx.alloc(bytes) {
                Some(addr) => {
                    ctx.store(addr);
                    self.pending_alloc = None;
                    self.strings_made += 1;
                }
                None => return StepResult::needs_gc(),
            }
        }

        let mut syscalls = 0u32;
        for _ in 0..EXPANSIONS_PER_STEP {
            ctx.call(self.m_expand.expect("setup"));
            // Expand a production: real traversal with a small explicit
            // stack, like the generator's recursive walk.
            let mut stack: Vec<u16> = vec![self.rng.below(PRODUCTIONS as u64) as u16];
            let mut depth = 0;
            while let Some(p) = stack.pop() {
                depth += 1;
                if depth > 24 {
                    break;
                }
                let prod = &self.grammar[p as usize];
                // Table load for the production entry, then pick an
                // alternative (data-dependent branch).
                let dep = ctx.load(self.table_base + p as u64 * 64);
                ctx.alu(2);
                // Grammar alternatives are heavily biased toward the
                // first production in practice.
                let alt = if self.rng.chance(0.8) {
                    0
                } else {
                    (self.rng.next_u64() % prod.alts.len() as u64) as usize
                };
                ctx.branch(alt == 0, true);
                self.checksum = self
                    .checksum
                    .wrapping_mul(37)
                    .wrapping_add(p as u64 + alt as u64);
                // Visit via the production's own method (code footprint).
                let vm = self.visitor_methods[p as usize % self.visitor_methods.len()];
                ctx.call(vm);
                ctx.alu(3);
                // Token/string churn: 2 allocations per visited node.
                for _ in 0..2 {
                    let bytes = 32 + self.rng.below(4) * 24;
                    match ctx.alloc(bytes) {
                        Some(addr) => {
                            ctx.store(addr);
                            self.strings_made += 1;
                        }
                        None => {
                            self.pending_alloc = Some(bytes);
                            return StepResult::needs_gc().with_syscalls(syscalls);
                        }
                    }
                }
                ctx.load_after(self.table_base + (p as u64 % 64) * 64, dep);
                for &succ in prod.alts[alt].iter().take(2) {
                    stack.push(succ);
                }
            }
            // Write a chunk of generated parser (I/O).
            ctx.call(self.m_write.expect("setup"));
            for _ in 0..8 {
                ctx.store(self.out_base + (self.out_pos % (512 * 1024)));
                self.out_pos += 16;
            }
            if self.rng.chance(0.25) {
                syscalls += 1;
            }
        }

        if self.work.advance(0, EXPANSIONS_PER_STEP) {
            StepResult::ran().with_syscalls(syscalls)
        } else {
            StepResult::finished().with_syscalls(syscalls)
        }
    }

    fn progress(&self) -> f64 {
        self.work.progress()
    }

    /// The grammar is built deterministically by `new`; cursors, the RNG
    /// and accumulators are state.
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        use jsmt_snapshot::Snapshotable;
        self.work.save_state(w);
        self.rng.save_state(w);
        w.put_u64(self.out_pos);
        w.put_opt_u64(self.pending_alloc);
        w.put_u64(self.strings_made);
        w.put_u64(self.checksum);
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        use jsmt_snapshot::Snapshotable;
        self.work.restore_state(r)?;
        self.rng.restore_state(r)?;
        self.out_pos = r.get_u64()?;
        self.pending_alloc = r.get_opt_u64()?;
        self.strings_made = r.get_u64()?;
        self.checksum = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StepOutcome;
    use jsmt_jvm::JvmConfig;

    fn run(scale: f64, heap: u64) -> (Jack, u64, u32) {
        let mut jvm = JvmProcess::new(1, JvmConfig::default().with_heap(heap));
        let mut k = Jack::new(scale);
        k.setup(&mut jvm);
        let (mut gcs, mut sys) = (0u64, 0u32);
        let mut steps = 0;
        loop {
            let mut out = Vec::new();
            let mut ctx = EmitCtx::new(&mut jvm, &mut out);
            let r = k.step(0, &mut ctx);
            sys += r.syscalls;
            steps += 1;
            assert!(steps < 500_000, "runaway");
            match r.outcome {
                StepOutcome::Finished => break,
                StepOutcome::NeedsGc => {
                    jvm.collect();
                    gcs += 1;
                }
                _ => {}
            }
        }
        (k, gcs, sys)
    }

    #[test]
    fn deterministic() {
        let (a, _, _) = run(0.02, 16 << 20);
        let (b, _, _) = run(0.02, 16 << 20);
        assert_eq!(a.checksum(), b.checksum());
    }

    #[test]
    fn heaviest_allocator_in_the_suite() {
        let (k, gcs, _) = run(0.2, 2 << 20);
        assert!(
            k.strings_made() > 1000,
            "string churn: {}",
            k.strings_made()
        );
        assert!(gcs >= 1, "jack must GC under a small heap");
    }

    #[test]
    fn writes_output_repeatedly() {
        let (_, _, sys) = run(0.2, 16 << 20);
        assert!(sys > 5, "expected many write syscalls, got {sys}");
    }

    #[test]
    fn largest_code_footprint() {
        let mut jvm = JvmProcess::new(1, JvmConfig::default());
        let mut k = Jack::new(0.1);
        k.setup(&mut jvm);
        assert!(jvm.methods().code_footprint() > 250 * 1024);
    }
}
