//! `mpegaudio` — SPECjvm98 _222_mpegaudio: MPEG Layer-3 decoding.
//!
//! The kernel computes the decoder's dominant loop for real: polyphase
//! subband synthesis — windowed dot products of a 512-sample FIFO against
//! the standard synthesis window, 32 subbands per frame. The input bit
//! reservoir is a deterministic pseudo-stream. Microarchitecturally: FP
//! multiply/accumulate dominated, small hot data (window + FIFO ≈ 12 KB),
//! highly predictable branches, high ILP — the suite's best-behaved
//! program (lowest CPI in the paper's population).

use jsmt_isa::Addr;
use jsmt_jvm::{EmitCtx, JvmProcess, MethodId};

use crate::util::{LibCode, Rng, WorkMeter};
use crate::{Kernel, StepResult};

const SUBBANDS: usize = 32;
const WINDOW_TAPS: usize = 16;
const SUBBANDS_PER_STEP: usize = 8;

/// The `mpegaudio` kernel. See the module docs.
#[derive(Debug)]
pub struct MpegAudio {
    work: WorkMeter,
    rng: Rng,
    window: Vec<f64>,
    fifo: Vec<f64>,
    fifo_pos: usize,
    window_base: Addr,
    fifo_base: Addr,
    out_base: Addr,
    m_synth: Option<MethodId>,
    m_dequant: Option<MethodId>,
    lib: Option<LibCode>,
    subband_cursor: usize,
    accum: f64,
    frames_done: u64,
}

impl MpegAudio {
    /// Create the kernel; `scale` multiplies the frame count.
    pub fn new(scale: f64) -> Self {
        let frames = ((2_200.0 * scale) as u64).max(8);
        let mut rng = Rng::new(0x3333);
        // The synthesis window: a real cosine-windowed sinc-ish shape.
        let window: Vec<f64> = (0..SUBBANDS * WINDOW_TAPS)
            .map(|i| {
                let x = i as f64 / (SUBBANDS * WINDOW_TAPS) as f64;
                (std::f64::consts::PI * x).cos() * (1.0 - x)
            })
            .collect();
        let fifo: Vec<f64> = (0..512).map(|_| rng.unit() - 0.5).collect();
        MpegAudio {
            work: WorkMeter::new(1, frames),
            rng,
            window,
            fifo,
            fifo_pos: 0,
            window_base: 0,
            fifo_base: 0,
            out_base: 0,
            m_synth: None,
            m_dequant: None,
            lib: None,
            subband_cursor: 0,
            accum: 0.0,
            frames_done: 0,
        }
    }

    /// Determinism witness: folded synthesis output.
    pub fn checksum(&self) -> u64 {
        self.accum.to_bits()
    }
}

impl Kernel for MpegAudio {
    fn name(&self) -> &str {
        "mpegaudio"
    }

    fn num_threads(&self) -> usize {
        1
    }

    fn setup(&mut self, jvm: &mut JvmProcess) {
        self.window_base = jvm.alloc_native((SUBBANDS * WINDOW_TAPS * 8) as u64, 64);
        self.fifo_base = jvm.alloc_native(512 * 8, 64);
        self.out_base = jvm.alloc_native(64 * 1024, 64);
        self.m_synth = Some(jvm.methods_mut().register("SynthesisFilter.compute", 2600));
        self.m_dequant = Some(jvm.methods_mut().register("LayerIII.dequantize", 1400));
        self.lib = Some(LibCode::register(jvm, "Mpeg", 18, 1200));
    }

    fn step(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        debug_assert_eq!(tid, 0);
        if !self.work.has_work(0) {
            return StepResult::finished();
        }

        if self.subband_cursor == 0 {
            // Frame prologue: dequantize — read the bit reservoir, scale.
            ctx.call(self.m_dequant.expect("setup"));
            for _ in 0..8 {
                let idx = self.rng.below(512);
                ctx.load(self.fifo_base + idx * 8);
                ctx.fpu(2, true);
            }
            // Shift the FIFO by one granule (real data movement).
            let v = self.rng.unit() - 0.5;
            self.fifo[self.fifo_pos] = v;
            self.fifo_pos = (self.fifo_pos + 1) % self.fifo.len();
        }

        self.lib.as_mut().expect("setup").invoke(ctx, 3);
        ctx.call(self.m_synth.expect("setup"));
        let end = (self.subband_cursor + SUBBANDS_PER_STEP).min(SUBBANDS);
        for sb in self.subband_cursor..end {
            // Real windowed dot product for subband `sb`.
            let mut sum = 0.0;
            for tap in 0..WINDOW_TAPS {
                let wi = sb * WINDOW_TAPS + tap;
                let fi = (self.fifo_pos + sb + tap * SUBBANDS) % self.fifo.len();
                sum += self.window[wi] * self.fifo[fi];
                // Two streaming loads + MAC.
                ctx.load(self.window_base + wi as u64 * 8);
                ctx.load(self.fifo_base + fi as u64 * 8);
                ctx.fpu(2, tap % 2 == 0);
            }
            self.accum += sum;
            // PCM output store; loop branch (predictable).
            ctx.store(self.out_base + (sb as u64 * 8) % (64 * 1024));
            ctx.branch(sb + 1 != SUBBANDS, true);
        }
        self.subband_cursor = end % SUBBANDS;

        if self.subband_cursor == 0 {
            self.frames_done += 1;
            if !self.work.advance(0, 1) {
                return StepResult::finished();
            }
        }
        StepResult::ran()
    }

    fn progress(&self) -> f64 {
        self.work.progress()
    }

    /// The synthesis window is invariant; the FIFO is rewritten at
    /// runtime and must be carried (exactly, via bit patterns).
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        use jsmt_snapshot::Snapshotable;
        self.work.save_state(w);
        self.rng.save_state(w);
        w.put_f64_slice(&self.fifo);
        w.put_usize(self.fifo_pos);
        w.put_usize(self.subband_cursor);
        w.put_f64(self.accum);
        w.put_u64(self.frames_done);
        self.lib.as_ref().expect("setup").save_state(w);
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        use jsmt_snapshot::Snapshotable;
        self.work.restore_state(r)?;
        self.rng.restore_state(r)?;
        let fifo = r.get_f64_vec()?;
        if fifo.len() != self.fifo.len() {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "FIFO length mismatch",
            ));
        }
        self.fifo = fifo;
        self.fifo_pos = r.get_usize()?;
        if self.fifo_pos >= self.fifo.len() {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "FIFO position out of range",
            ));
        }
        self.subband_cursor = r.get_usize()?;
        if self.subband_cursor >= SUBBANDS {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "subband cursor out of range",
            ));
        }
        self.accum = r.get_f64()?;
        self.frames_done = r.get_u64()?;
        self.lib.as_mut().expect("setup").restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StepOutcome;
    use jsmt_isa::{InstrMix, UopKind};
    use jsmt_jvm::JvmConfig;

    fn run(scale: f64) -> (MpegAudio, InstrMix) {
        let mut jvm = JvmProcess::new(1, JvmConfig::default());
        let mut k = MpegAudio::new(scale);
        k.setup(&mut jvm);
        let mut mix = InstrMix::new();
        let mut steps = 0;
        loop {
            let mut out = Vec::new();
            let mut ctx = EmitCtx::new(&mut jvm, &mut out);
            let r = k.step(0, &mut ctx);
            for u in &out {
                mix.record(u);
            }
            steps += 1;
            assert!(steps < 500_000, "runaway");
            if r.outcome == StepOutcome::Finished {
                break;
            }
        }
        (k, mix)
    }

    #[test]
    fn fp_dominated_mix() {
        let (_, mix) = run(0.01);
        assert!(mix.fp_fraction() > 0.2, "fp fraction {}", mix.fp_fraction());
        assert!(mix.mem_fraction() > 0.2, "streaming loads expected");
    }

    #[test]
    fn deterministic_output() {
        let (a, _) = run(0.01);
        let (b, _) = run(0.01);
        assert_eq!(a.checksum(), b.checksum());
        assert!(a.accum.is_finite());
    }

    #[test]
    fn synthesis_actually_computes() {
        let (k, _) = run(0.01);
        assert_ne!(
            k.checksum(),
            0.0f64.to_bits(),
            "dot products must accumulate"
        );
        assert!(k.frames_done >= 22);
    }

    #[test]
    fn small_hot_data() {
        // Window + FIFO must stay well under the L2 so the paper's
        // low-MPKI behaviour can emerge.
        let k = MpegAudio::new(1.0);
        let bytes = (k.window.len() + k.fifo.len()) * 8;
        assert!(bytes < 16 * 1024, "hot data {bytes}");
    }

    #[test]
    fn stores_pcm_output() {
        let mut jvm = JvmProcess::new(1, JvmConfig::default());
        let mut k = MpegAudio::new(0.01);
        k.setup(&mut jvm);
        let mut out = Vec::new();
        let mut ctx = EmitCtx::new(&mut jvm, &mut out);
        let _ = k.step(0, &mut ctx);
        assert!(out.iter().any(|u| u.kind == UopKind::Store));
    }
}
