//! `litmus-sb` — the store-buffer litmus shape.
//!
//! Two threads each store to their own variable and then load the
//! other's: `A: x = 1; ra = y` against `B: y = 1; rb = x`. On real
//! store-buffered hardware both loads can return 0; under sequential
//! consistency — which this simulator's step-granular, program-ordered
//! kernel state provides — `ra = rb = 0` is forbidden: whichever load
//! executes last necessarily sees the other side's completed store.
//! Observing `"00"` would mean an exec tier replayed stale state.
//!
//! The A side is the round leader: it records the pair's outcome once
//! both sides have loaded, resets the shared variables, and publishes
//! the round bump that gates the B side's next stores — so no store or
//! load of round `r + 1` can overlap round `r`'s sampling.

use std::collections::BTreeSet;

use jsmt_isa::Addr;
use jsmt_jvm::{EmitCtx, JvmProcess, MethodId};

use super::{join_labels, restore_labels, rounds_of, save_labels, seed_of, spin_tick, Scoreboard};
use crate::util::{LibCode, Rng};
use crate::{Kernel, StepResult};

const PAIR_STRIDE: u64 = 256;

/// The store-buffer litmus kernel. See the module docs.
#[derive(Debug)]
pub struct StoreBuffer {
    threads: usize,
    rounds: u64,
    rngs: Vec<Rng>,
    phase: Vec<u8>,
    spin_left: Vec<u32>,
    cur_round: Vec<u64>,
    x: Vec<u64>,
    y: Vec<u64>,
    ra: Vec<u64>,
    rb: Vec<u64>,
    done_a: Vec<bool>,
    done_b: Vec<bool>,
    round: Vec<u64>,
    seen: BTreeSet<String>,
    score: Scoreboard,
    base: Addr,
    m_proto: Option<MethodId>,
    lib: Option<LibCode>,
}

impl StoreBuffer {
    /// Create the kernel: `scale` sizes the round count and seeds the
    /// interleaving (see the family docs).
    pub fn new(threads: usize, scale: f64) -> Self {
        assert!(threads >= 1);
        let seed = seed_of(scale);
        let pairs = threads.div_ceil(2);
        StoreBuffer {
            threads,
            rounds: rounds_of(scale, 16, 120.0),
            rngs: (0..threads)
                .map(|t| Rng::new(seed ^ (0x5B5B + t as u64 * 6151)))
                .collect(),
            phase: vec![0; threads],
            spin_left: vec![0; threads],
            cur_round: vec![0; threads],
            x: vec![0; pairs],
            y: vec![0; pairs],
            ra: vec![0; pairs],
            rb: vec![0; pairs],
            done_a: vec![false; pairs],
            done_b: vec![false; pairs],
            round: vec![0; pairs],
            seen: BTreeSet::new(),
            score: Scoreboard::default(),
            base: 0,
            m_proto: None,
            lib: None,
        }
    }

    /// Outcomes seen so far (for tests).
    pub fn outcomes(&self) -> &BTreeSet<String> {
        &self.seen
    }

    fn is_solo(&self, tid: usize) -> bool {
        self.threads % 2 == 1 && tid == self.threads - 1
    }

    fn addr_x(&self, p: usize) -> Addr {
        self.base + p as u64 * PAIR_STRIDE
    }

    fn addr_y(&self, p: usize) -> Addr {
        self.base + p as u64 * PAIR_STRIDE + 8
    }

    fn addr_round(&self, p: usize) -> Addr {
        self.base + p as u64 * PAIR_STRIDE + 16
    }

    fn scratch(&self) -> Addr {
        self.base + 4096
    }

    fn spin(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> bool {
        if self.spin_left[tid] > 0 {
            self.spin_left[tid] -= 1;
            let scratch = self.scratch();
            spin_tick(
                self.lib.as_mut().expect("setup"),
                &mut self.rngs[tid],
                ctx,
                scratch,
            );
            return true;
        }
        false
    }

    fn arm_spin(&mut self, tid: usize, span: u64) {
        self.spin_left[tid] = 1 + self.rngs[tid].below(span) as u32;
    }

    fn round_end(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        let wake = match self.score.update(tid, ctx) {
            Ok(wake) => wake,
            Err(blocked) => return blocked,
        };
        self.cur_round[tid] += 1;
        self.phase[tid] = 0;
        if self.cur_round[tid] == self.rounds {
            StepResult::finished().with_wake(wake)
        } else {
            StepResult::ran().with_wake(wake)
        }
    }

    /// The A side: store `x`, load `y`, then lead the round turnover.
    fn step_a(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        let p = tid / 2;
        ctx.call(self.m_proto.expect("setup"));
        match self.phase[tid] {
            0 => {
                self.arm_spin(tid, 5);
                self.phase[tid] = 1;
                self.spin(tid, ctx);
                StepResult::ran()
            }
            1 => {
                if !self.spin(tid, ctx) {
                    self.x[p] = 1;
                    ctx.store(self.addr_x(p));
                    self.arm_spin(tid, 4);
                    self.phase[tid] = 2;
                }
                StepResult::ran()
            }
            2 => {
                if !self.spin(tid, ctx) {
                    self.ra[p] = self.y[p];
                    ctx.load(self.addr_y(p));
                    self.done_a[p] = true;
                    self.phase[tid] = 3;
                }
                StepResult::ran()
            }
            3 => {
                // Wait for the B side's load, then record and turn the
                // round over.
                ctx.load(self.addr_y(p));
                ctx.branch(self.done_b[p], false);
                if self.done_a[p] && self.done_b[p] {
                    self.seen
                        .insert(format!("{}{}", self.ra[p].min(1), self.rb[p].min(1)));
                    self.x[p] = 0;
                    self.y[p] = 0;
                    ctx.store(self.addr_x(p));
                    ctx.store(self.addr_y(p));
                    self.ra[p] = 0;
                    self.rb[p] = 0;
                    self.done_a[p] = false;
                    self.done_b[p] = false;
                    self.round[p] += 1;
                    ctx.store(self.addr_round(p));
                    self.phase[tid] = 4;
                } else {
                    ctx.alu(3);
                }
                StepResult::ran()
            }
            _ => self.round_end(tid, ctx),
        }
    }

    /// The B side: gated on the leader's round bump; store `y`, load `x`.
    fn step_b(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        let p = tid / 2;
        ctx.call(self.m_proto.expect("setup"));
        match self.phase[tid] {
            0 => {
                ctx.load(self.addr_round(p));
                ctx.branch(self.round[p] == self.cur_round[tid], false);
                if self.round[p] == self.cur_round[tid] {
                    self.arm_spin(tid, 5);
                    self.phase[tid] = 1;
                    self.spin(tid, ctx);
                } else {
                    ctx.alu(2);
                }
                StepResult::ran()
            }
            1 => {
                if !self.spin(tid, ctx) {
                    self.y[p] = 1;
                    ctx.store(self.addr_y(p));
                    self.arm_spin(tid, 4);
                    self.phase[tid] = 2;
                }
                StepResult::ran()
            }
            2 => {
                if !self.spin(tid, ctx) {
                    self.rb[p] = self.x[p];
                    ctx.load(self.addr_x(p));
                    self.done_b[p] = true;
                    self.phase[tid] = 3;
                }
                StepResult::ran()
            }
            3 => {
                // Wait for the leader's round turnover before the
                // scoreboard fold.
                ctx.load(self.addr_round(p));
                ctx.branch(self.round[p] > self.cur_round[tid], false);
                if self.round[p] > self.cur_round[tid] {
                    self.phase[tid] = 4;
                } else {
                    ctx.alu(3);
                }
                StepResult::ran()
            }
            _ => self.round_end(tid, ctx),
        }
    }

    /// A leftover unpaired thread does both sides in program order: it
    /// can only ever observe `11`.
    fn step_solo(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        let p = tid / 2;
        ctx.call(self.m_proto.expect("setup"));
        match self.phase[tid] {
            0 => {
                self.arm_spin(tid, 4);
                self.phase[tid] = 1;
                self.spin(tid, ctx);
                StepResult::ran()
            }
            1 => {
                if !self.spin(tid, ctx) {
                    self.x[p] = 1;
                    self.y[p] = 1;
                    ctx.store(self.addr_x(p));
                    ctx.store(self.addr_y(p));
                    self.phase[tid] = 2;
                }
                StepResult::ran()
            }
            2 => {
                let ra = self.y[p];
                let rb = self.x[p];
                ctx.load(self.addr_y(p));
                ctx.load(self.addr_x(p));
                self.seen.insert(format!("{}{}", ra.min(1), rb.min(1)));
                self.x[p] = 0;
                self.y[p] = 0;
                ctx.store(self.addr_x(p));
                ctx.store(self.addr_y(p));
                self.phase[tid] = 4;
                StepResult::ran()
            }
            _ => self.round_end(tid, ctx),
        }
    }
}

impl Kernel for StoreBuffer {
    fn name(&self) -> &str {
        "litmus-sb"
    }

    fn num_threads(&self) -> usize {
        self.threads
    }

    fn setup(&mut self, jvm: &mut JvmProcess) {
        self.base = jvm.alloc_native(8192, 64);
        self.m_proto = Some(jvm.methods_mut().register("LitmusSB.round", 430));
        self.lib = Some(LibCode::register(jvm, "LitmusSB", 6, 700));
        self.score.setup(jvm, self.base + 8064);
    }

    fn step(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        if self.cur_round[tid] >= self.rounds {
            return StepResult::finished();
        }
        if self.is_solo(tid) {
            self.step_solo(tid, ctx)
        } else if tid.is_multiple_of(2) {
            self.step_a(tid, ctx)
        } else {
            self.step_b(tid, ctx)
        }
    }

    fn progress(&self) -> f64 {
        let done: u64 = self.cur_round.iter().sum();
        done as f64 / (self.rounds * self.threads as u64) as f64
    }

    fn observation(&self) -> Option<String> {
        Some(join_labels(&self.seen))
    }

    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        use jsmt_snapshot::Snapshotable;
        for rng in &self.rngs {
            rng.save_state(w);
        }
        for &v in &self.phase {
            w.put_u8(v);
        }
        for &v in &self.spin_left {
            w.put_u32(v);
        }
        for &v in &self.cur_round {
            w.put_u64(v);
        }
        for vs in [&self.x, &self.y, &self.ra, &self.rb, &self.round] {
            for &v in vs {
                w.put_u64(v);
            }
        }
        for vs in [&self.done_a, &self.done_b] {
            for &v in vs {
                w.put_bool(v);
            }
        }
        save_labels(w, &self.seen);
        self.score.save_state(w);
        self.lib.as_ref().expect("setup").save_state(w);
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        use jsmt_snapshot::Snapshotable;
        for rng in &mut self.rngs {
            rng.restore_state(r)?;
        }
        for v in &mut self.phase {
            *v = r.get_u8()?;
        }
        for v in &mut self.spin_left {
            *v = r.get_u32()?;
        }
        for v in &mut self.cur_round {
            *v = r.get_u64()?;
        }
        for vs in [
            &mut self.x,
            &mut self.y,
            &mut self.ra,
            &mut self.rb,
            &mut self.round,
        ] {
            for v in vs.iter_mut() {
                *v = r.get_u64()?;
            }
        }
        for vs in [&mut self.done_a, &mut self.done_b] {
            for v in vs.iter_mut() {
                *v = r.get_bool()?;
            }
        }
        self.seen = restore_labels(r)?;
        self.score.restore_state(r)?;
        self.lib.as_mut().expect("setup").restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::litmus::testutil::drive;

    #[test]
    fn never_observes_both_zero() {
        for seed in 0..24u64 {
            let scale = 0.02 + seed as f64 * 0.001;
            let mut k = StoreBuffer::new(2, scale);
            drive(&mut k, 2);
            for label in k.outcomes() {
                assert_ne!(label, "00", "SC forbids 00 (scale {scale})");
            }
            assert!(!k.outcomes().is_empty());
        }
    }

    #[test]
    fn tolerates_odd_and_single_thread_counts() {
        for threads in [1, 3] {
            let mut k = StoreBuffer::new(threads, 0.05);
            drive(&mut k, threads);
            assert!(k.progress() > 0.999);
            assert!(k.outcomes().iter().all(|l| l != "00"));
        }
    }
}
