//! The litmus workload family: small sync-bound kernels whose *output is
//! the interleaving*, not a throughput number.
//!
//! Classic memory-model litmus shapes (message passing, store buffer)
//! and synchronization-stress shapes (lock handoff, barrier convoy,
//! wait/notify ping-pong) run their real protocols over the simulated
//! machine — every monitor enter/exit is a real [`jsmt_jvm::MonitorTable`]
//! transition narrated as atomic µops, every park a real scheduler block
//! through the futex path. Each kernel records a per-thread observation
//! tuple and exposes it through [`crate::Kernel::observation`] as a
//! compact label; the harness in `jsmt-core` checks those labels against
//! a per-shape allowed-outcomes table across a seed sweep.
//!
//! Seeding: a litmus kernel derives its RNG stream from the *bit pattern*
//! of `scale` (every distinct scale is a distinct interleaving trial),
//! while the work volume — rounds, tokens — still grows monotonically
//! with `scale` like every other kernel, so the registry-wide property
//! tests (work scales with `scale`, any thread count terminates) hold.
//!
//! Thread-count tolerance: the pairwise shapes (message passing, store
//! buffer, ping-pong) partition threads into writer/reader pairs; an
//! odd leftover thread runs a degenerate solo protocol that trivially
//! satisfies the shape's invariant. The harness always runs them at
//! their canonical thread counts ([`crate::BenchmarkId::default_threads`]).

mod barrier_convoy;
mod lock_handoff;
mod message_passing;
mod ping_pong;
mod store_buffer;

pub use barrier_convoy::BarrierConvoy;
pub use lock_handoff::LockHandoff;
pub use message_passing::MessagePassing;
pub use ping_pong::PingPong;
pub use store_buffer::StoreBuffer;

use jsmt_isa::Addr;
use jsmt_jvm::EmitCtx;

use crate::util::{LibCode, Rng};

/// The interleaving seed: the bit pattern of the workload scale, so each
/// sweep point is a distinct trial while staying a plain `WorkloadSpec`
/// field (and thus surviving the checkpoint roster unchanged).
pub(crate) fn seed_of(scale: f64) -> u64 {
    scale.to_bits()
}

/// Work volume scaled like every other kernel: a floor plus a
/// `scale`-proportional term, so work grows strictly with `scale` and
/// dominates per-seed spin-width noise.
pub(crate) fn rounds_of(scale: f64, base: u64, per: f64) -> u64 {
    base + (scale.max(0.0) * per) as u64
}

/// One seed-varied delay tick: a library-method call with a small ALU
/// body plus a scratch load — enough µops that spin-width differences
/// actually move the schedule, with a footprint like real Java glue code.
pub(crate) fn spin_tick(lib: &mut LibCode, rng: &mut Rng, ctx: &mut EmitCtx<'_>, scratch: Addr) {
    lib.invoke(ctx, 14 + rng.below(10) as u32);
    ctx.load(scratch + rng.below(64) * 8);
    ctx.branch(rng.chance(0.7), true);
}

/// Bucket a small counter into a closed three-way label so outcome
/// tables stay enumerable: `0`, `1..=4`, `5..`.
pub(crate) fn bucket(n: u64) -> &'static str {
    match n {
        0 => "0",
        1..=4 => "lo",
        _ => "hi",
    }
}

/// A shared, monitor-guarded per-round result cell. Every litmus thread
/// folds its round into the scoreboard under a real monitor, so even the
/// lock-free shapes (message passing, store buffer) drive genuine
/// monitor-enter/exit traffic — and occasionally the contended futex
/// path — alongside their plain loads and stores.
#[derive(Debug, Default)]
pub(crate) struct Scoreboard {
    mon: Option<jsmt_jvm::MonitorId>,
    addr: Addr,
    hits: u64,
}

impl Scoreboard {
    pub(crate) fn setup(&mut self, jvm: &mut jsmt_jvm::JvmProcess, addr: Addr) {
        self.mon = Some(jvm.monitors_mut().create());
        self.addr = addr;
    }

    /// Monitor-guarded bump. `Ok(wake)` when the critical section ran to
    /// completion; `Err(blocked)` when the caller must park (re-step this
    /// same phase after the handoff wake — a woken thread already owns
    /// the monitor and takes the `already` path).
    pub(crate) fn update(
        &mut self,
        tid: usize,
        ctx: &mut EmitCtx<'_>,
    ) -> Result<Vec<usize>, crate::StepResult> {
        use jsmt_jvm::MonitorOutcome;
        let mon = self.mon.expect("setup");
        ctx.atomic(self.addr);
        let already = ctx.process().monitors().owner(mon) == Some(tid as u32);
        if !already {
            match ctx.process().monitors_mut().enter(mon, tid as u32) {
                MonitorOutcome::Contended => {
                    return Err(crate::StepResult::blocked(crate::BlockReason::Monitor(mon)));
                }
                MonitorOutcome::Acquired => {}
            }
        }
        self.hits += 1;
        ctx.load(self.addr);
        ctx.alu(2);
        ctx.store(self.addr);
        let next = ctx.process().monitors_mut().exit(mon, tid as u32);
        Ok(next.map(|t| vec![t as usize]).unwrap_or_default())
    }

    pub(crate) fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        w.put_u64(self.hits);
    }

    pub(crate) fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        self.hits = r.get_u64()?;
        Ok(())
    }
}

/// Serialize a sorted label set.
pub(crate) fn save_labels(
    w: &mut jsmt_snapshot::Writer,
    labels: &std::collections::BTreeSet<String>,
) {
    w.put_usize(labels.len());
    for l in labels {
        w.put_str(l);
    }
}

/// Restore a label set written by [`save_labels`].
pub(crate) fn restore_labels(
    r: &mut jsmt_snapshot::Reader<'_>,
) -> Result<std::collections::BTreeSet<String>, jsmt_snapshot::SnapshotError> {
    let n = r.get_len(2)?;
    let mut set = std::collections::BTreeSet::new();
    for _ in 0..n {
        set.insert(r.get_str()?);
    }
    Ok(set)
}

/// Join a label set into the kernel's observation string ("00+01+11").
pub(crate) fn join_labels(labels: &std::collections::BTreeSet<String>) -> String {
    labels
        .iter()
        .map(String::as_str)
        .collect::<Vec<_>>()
        .join("+")
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::{Kernel, StepOutcome};
    use jsmt_jvm::{EmitCtx, JvmConfig, JvmProcess};

    /// Minimal round-robin driver honouring blocks and wakes, for
    /// kernel-level unit tests.
    pub(crate) fn drive(k: &mut dyn Kernel, threads: usize) -> u64 {
        let mut jvm = JvmProcess::new(1, JvmConfig::default());
        k.setup(&mut jvm);
        let mut blocked = vec![false; threads];
        let mut finished = vec![false; threads];
        let mut uops = 0u64;
        let mut guard = 0u64;
        while finished.iter().any(|f| !f) {
            guard += 1;
            assert!(guard < 2_000_000, "deadlock or runaway in {}", k.name());
            for tid in 0..threads {
                if blocked[tid] || finished[tid] {
                    continue;
                }
                let mut out = Vec::new();
                let mut ctx = EmitCtx::new(&mut jvm, &mut out);
                let r = k.step(tid, &mut ctx);
                uops += out.len() as u64;
                for &w in &r.wake {
                    blocked[w] = false;
                }
                match r.outcome {
                    StepOutcome::Blocked(_) => blocked[tid] = true,
                    StepOutcome::Finished => finished[tid] = true,
                    StepOutcome::NeedsGc => {
                        jvm.collect();
                    }
                    StepOutcome::Ran => {}
                }
            }
            assert!(
                (0..threads).any(|t| !finished[t] && !blocked[t]) || finished.iter().all(|f| *f),
                "all litmus threads blocked in {}",
                k.name()
            );
        }
        uops
    }
}
