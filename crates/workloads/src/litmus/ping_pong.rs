//! `litmus-pingpong` — wait/notify token passing over a real monitor.
//!
//! Threads pair up as producer/consumer on a one-slot token cell guarded
//! by a per-pair monitor, running the canonical Java idiom: lock, `while
//! (!ready) wait()`, mutate, `notify()`, hold a few more steps, unlock.
//! The deliberate gap between `notify` and the unlock keeps the notified
//! thread in the *pending-notify window* — re-queued for entry, not yet
//! owner — across several scheduler-visible steps, which is exactly the
//! state the checkpoint tests snapshot through.
//!
//! Witnessed invariants: a consumer must only ever consume a full slot
//! (`"v=0"` in the label means a lost or phantom wakeup handed it an
//! empty token), and every produced token must be consumed
//! (`"bal=bad"` means the counts diverged). The final label also buckets
//! how many real `wait` parks the schedule produced.
//!
//! A spuriously re-stepped thread re-blocks without re-entering: the
//! entry-queue and wait-set membership probes distinguish "still parked"
//! from "woken with ownership", so monitor statistics stay exact.

use std::collections::BTreeSet;

use jsmt_isa::Addr;
use jsmt_jvm::{EmitCtx, JvmProcess, MethodId, MonitorId, MonitorOutcome};

use super::{bucket, join_labels, restore_labels, rounds_of, save_labels, seed_of, spin_tick};
use crate::util::{LibCode, Rng};
use crate::{BlockReason, Kernel, StepResult};

const PAIR_STRIDE: u64 = 256;

/// The wait/notify ping-pong litmus kernel. See the module docs.
#[derive(Debug)]
pub struct PingPong {
    threads: usize,
    rounds: u64,
    rngs: Vec<Rng>,
    phase: Vec<u8>,
    spin_left: Vec<u32>,
    hold_left: Vec<u32>,
    cur_round: Vec<u64>,
    token: Vec<u64>,
    produced: Vec<u64>,
    consumed: Vec<u64>,
    mons: Vec<MonitorId>,
    seen: BTreeSet<String>,
    finished_count: u32,
    base: Addr,
    m_proto: Option<MethodId>,
    lib: Option<LibCode>,
}

impl PingPong {
    /// Create the kernel: `scale` sizes the round count and seeds the
    /// interleaving (see the family docs).
    pub fn new(threads: usize, scale: f64) -> Self {
        assert!(threads >= 1);
        let seed = seed_of(scale);
        let pairs = threads.div_ceil(2);
        PingPong {
            threads,
            rounds: rounds_of(scale, 12, 80.0),
            rngs: (0..threads)
                .map(|t| Rng::new(seed ^ (0x9109 + t as u64 * 3571)))
                .collect(),
            phase: vec![0; threads],
            spin_left: vec![0; threads],
            hold_left: vec![0; threads],
            cur_round: vec![0; threads],
            token: vec![0; pairs],
            produced: vec![0; pairs],
            consumed: vec![0; pairs],
            mons: Vec::new(),
            seen: BTreeSet::new(),
            finished_count: 0,
            base: 0,
            m_proto: None,
            lib: None,
        }
    }

    /// Labels observed so far (for tests).
    pub fn outcomes(&self) -> &BTreeSet<String> {
        &self.seen
    }

    fn is_solo(&self, tid: usize) -> bool {
        self.threads % 2 == 1 && tid == self.threads - 1
    }

    fn addr_token(&self, p: usize) -> Addr {
        self.base + p as u64 * PAIR_STRIDE
    }

    fn scratch(&self) -> Addr {
        self.base + 4096
    }

    fn spin(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> bool {
        if self.spin_left[tid] > 0 {
            self.spin_left[tid] -= 1;
            let scratch = self.scratch();
            spin_tick(
                self.lib.as_mut().expect("setup"),
                &mut self.rngs[tid],
                ctx,
                scratch,
            );
            return true;
        }
        false
    }

    /// Acquire `mon`, tolerating spurious re-steps while parked. `Ok(())`
    /// means the caller owns the monitor on return.
    fn lock(&mut self, tid: usize, p: usize, ctx: &mut EmitCtx<'_>) -> Result<(), StepResult> {
        let mon = self.mons[p];
        ctx.atomic(self.addr_token(p));
        let mons = ctx.process().monitors();
        if mons.owner(mon) == Some(tid as u32) {
            return Ok(());
        }
        if mons.entry_queued(mon, tid as u32) || mons.in_wait_set(mon, tid as u32) {
            // Spurious re-step while parked: stay blocked, don't inflate
            // the contention statistics with a second enter.
            return Err(StepResult::blocked(BlockReason::Monitor(mon)));
        }
        match ctx.process().monitors_mut().enter(mon, tid as u32) {
            MonitorOutcome::Contended => Err(StepResult::blocked(BlockReason::Monitor(mon))),
            MonitorOutcome::Acquired => Ok(()),
        }
    }

    fn finish_round(&mut self, tid: usize, ctx: &mut EmitCtx<'_>, wake: Vec<usize>) -> StepResult {
        self.cur_round[tid] += 1;
        self.phase[tid] = 0;
        if self.cur_round[tid] < self.rounds {
            return StepResult::ran().with_wake(wake);
        }
        self.finished_count += 1;
        if self.finished_count == self.threads as u32 {
            let bal = (0..self.token.len()).all(|p| self.produced[p] == self.consumed[p]);
            self.seen
                .insert(format!("bal={}", if bal { "ok" } else { "bad" }));
            self.seen.insert(format!(
                "w={}",
                bucket(ctx.process().monitors().waits_total())
            ));
        }
        StepResult::finished().with_wake(wake)
    }

    /// Producer: `while (full) wait(); token = 1; notify(); ...; unlock`.
    fn step_producer(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        let p = tid / 2;
        let mon = self.mons[p];
        ctx.call(self.m_proto.expect("setup"));
        match self.phase[tid] {
            0 => {
                self.spin_left[tid] = 1 + self.rngs[tid].below(5) as u32;
                self.phase[tid] = 1;
                self.spin(tid, ctx);
                StepResult::ran()
            }
            1 => {
                if self.spin(tid, ctx) {
                    return StepResult::ran();
                }
                if let Err(blocked) = self.lock(tid, p, ctx) {
                    return blocked;
                }
                self.phase[tid] = 2;
                StepResult::ran()
            }
            2 => {
                // Condition check under the lock; a woken thread lands
                // back here and re-checks (the `while`, not an `if`).
                if ctx.process().monitors().owner(mon) != Some(tid as u32) {
                    return StepResult::blocked(BlockReason::Monitor(mon));
                }
                ctx.load(self.addr_token(p));
                ctx.branch(self.token[p] != 0, false);
                if self.token[p] != 0 {
                    let next = ctx.process().monitors_mut().wait(mon, tid as u32);
                    return StepResult::blocked(BlockReason::Monitor(mon))
                        .with_wake(next.map(|t| vec![t as usize]).unwrap_or_default());
                }
                self.token[p] = 1;
                self.produced[p] += 1;
                ctx.store(self.addr_token(p));
                ctx.process().monitors_mut().notify(mon, tid as u32);
                self.hold_left[tid] = 1 + self.rngs[tid].below(3) as u32;
                self.phase[tid] = 3;
                StepResult::ran()
            }
            _ => {
                // Hold the lock a few steps past the notify: the notified
                // peer sits in the pending-notify window the whole time.
                self.hold_left[tid] -= 1;
                let scratch = self.scratch();
                spin_tick(
                    self.lib.as_mut().expect("setup"),
                    &mut self.rngs[tid],
                    ctx,
                    scratch,
                );
                if self.hold_left[tid] > 0 {
                    return StepResult::ran();
                }
                let next = ctx.process().monitors_mut().exit(mon, tid as u32);
                self.finish_round(tid, ctx, next.map(|t| vec![t as usize]).unwrap_or_default())
            }
        }
    }

    /// Consumer: `while (empty) wait(); v = token; token = 0; notify()`.
    fn step_consumer(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        let p = tid / 2;
        let mon = self.mons[p];
        ctx.call(self.m_proto.expect("setup"));
        match self.phase[tid] {
            0 => {
                self.spin_left[tid] = 1 + self.rngs[tid].below(5) as u32;
                self.phase[tid] = 1;
                self.spin(tid, ctx);
                StepResult::ran()
            }
            1 => {
                if self.spin(tid, ctx) {
                    return StepResult::ran();
                }
                if let Err(blocked) = self.lock(tid, p, ctx) {
                    return blocked;
                }
                self.phase[tid] = 2;
                StepResult::ran()
            }
            2 => {
                if ctx.process().monitors().owner(mon) != Some(tid as u32) {
                    return StepResult::blocked(BlockReason::Monitor(mon));
                }
                ctx.load(self.addr_token(p));
                ctx.branch(self.token[p] == 0, false);
                if self.token[p] == 0 {
                    let next = ctx.process().monitors_mut().wait(mon, tid as u32);
                    return StepResult::blocked(BlockReason::Monitor(mon))
                        .with_wake(next.map(|t| vec![t as usize]).unwrap_or_default());
                }
                let v = self.token[p];
                self.seen.insert(format!("v={}", v.min(1)));
                self.token[p] = 0;
                self.consumed[p] += 1;
                ctx.store(self.addr_token(p));
                ctx.process().monitors_mut().notify(mon, tid as u32);
                self.hold_left[tid] = 1 + self.rngs[tid].below(2) as u32;
                self.phase[tid] = 3;
                StepResult::ran()
            }
            _ => {
                self.hold_left[tid] -= 1;
                let scratch = self.scratch();
                spin_tick(
                    self.lib.as_mut().expect("setup"),
                    &mut self.rngs[tid],
                    ctx,
                    scratch,
                );
                if self.hold_left[tid] > 0 {
                    return StepResult::ran();
                }
                let next = ctx.process().monitors_mut().exit(mon, tid as u32);
                self.finish_round(tid, ctx, next.map(|t| vec![t as usize]).unwrap_or_default())
            }
        }
    }

    /// A leftover unpaired thread ping-pongs with itself: produce and
    /// consume in program order, never waiting.
    fn step_solo(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        let p = tid / 2;
        ctx.call(self.m_proto.expect("setup"));
        match self.phase[tid] {
            0 => {
                self.spin_left[tid] = 1 + self.rngs[tid].below(4) as u32;
                self.phase[tid] = 1;
                self.spin(tid, ctx);
                StepResult::ran()
            }
            1 => {
                if self.spin(tid, ctx) {
                    return StepResult::ran();
                }
                if let Err(blocked) = self.lock(tid, p, ctx) {
                    return blocked;
                }
                self.token[p] = 1;
                self.produced[p] += 1;
                ctx.store(self.addr_token(p));
                self.phase[tid] = 2;
                StepResult::ran()
            }
            _ => {
                let v = self.token[p];
                ctx.load(self.addr_token(p));
                self.seen.insert(format!("v={}", v.min(1)));
                self.token[p] = 0;
                self.consumed[p] += 1;
                ctx.store(self.addr_token(p));
                let next = ctx.process().monitors_mut().exit(self.mons[p], tid as u32);
                self.finish_round(tid, ctx, next.map(|t| vec![t as usize]).unwrap_or_default())
            }
        }
    }
}

impl Kernel for PingPong {
    fn name(&self) -> &str {
        "litmus-pingpong"
    }

    fn num_threads(&self) -> usize {
        self.threads
    }

    fn setup(&mut self, jvm: &mut JvmProcess) {
        self.base = jvm.alloc_native(8192, 64);
        self.m_proto = Some(jvm.methods_mut().register("LitmusPingPong.round", 470));
        self.lib = Some(LibCode::register(jvm, "LitmusPingPong", 6, 700));
        self.mons = (0..self.token.len())
            .map(|_| jvm.monitors_mut().create())
            .collect();
    }

    fn step(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        if self.cur_round[tid] >= self.rounds {
            return StepResult::finished();
        }
        if self.is_solo(tid) {
            self.step_solo(tid, ctx)
        } else if tid.is_multiple_of(2) {
            self.step_producer(tid, ctx)
        } else {
            self.step_consumer(tid, ctx)
        }
    }

    fn progress(&self) -> f64 {
        let done: u64 = self.cur_round.iter().sum();
        done as f64 / (self.rounds * self.threads as u64) as f64
    }

    fn observation(&self) -> Option<String> {
        Some(join_labels(&self.seen))
    }

    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        use jsmt_snapshot::Snapshotable;
        for rng in &self.rngs {
            rng.save_state(w);
        }
        for &v in &self.phase {
            w.put_u8(v);
        }
        for &v in &self.spin_left {
            w.put_u32(v);
        }
        for &v in &self.hold_left {
            w.put_u32(v);
        }
        for &v in &self.cur_round {
            w.put_u64(v);
        }
        for vs in [&self.token, &self.produced, &self.consumed] {
            for &v in vs {
                w.put_u64(v);
            }
        }
        save_labels(w, &self.seen);
        w.put_u32(self.finished_count);
        self.lib.as_ref().expect("setup").save_state(w);
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        use jsmt_snapshot::Snapshotable;
        for rng in &mut self.rngs {
            rng.restore_state(r)?;
        }
        for v in &mut self.phase {
            *v = r.get_u8()?;
        }
        for v in &mut self.spin_left {
            *v = r.get_u32()?;
        }
        for v in &mut self.hold_left {
            *v = r.get_u32()?;
        }
        for v in &mut self.cur_round {
            *v = r.get_u64()?;
        }
        for vs in [&mut self.token, &mut self.produced, &mut self.consumed] {
            for v in vs.iter_mut() {
                *v = r.get_u64()?;
            }
        }
        self.seen = restore_labels(r)?;
        self.finished_count = r.get_u32()?;
        self.lib.as_mut().expect("setup").restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::litmus::testutil::drive;

    #[test]
    fn never_consumes_empty_token() {
        for seed in 0..24u64 {
            let scale = 0.02 + seed as f64 * 0.001;
            let mut k = PingPong::new(2, scale);
            drive(&mut k, 2);
            assert!(!k.outcomes().contains("v=0"), "scale {scale}");
            assert!(k.outcomes().contains("v=1"));
            assert!(k.outcomes().contains("bal=ok"), "{:?}", k.outcomes());
        }
    }

    #[test]
    fn pair_actually_exercises_wait_notify() {
        // At least one seed in a short sweep must produce a real park —
        // otherwise the shape isn't testing the wait path at all.
        let mut any_waits = false;
        for seed in 0..8u64 {
            let scale = 0.02 + seed as f64 * 0.001;
            let mut k = PingPong::new(2, scale);
            drive(&mut k, 2);
            if k.outcomes().iter().any(|l| l == "w=lo" || l == "w=hi") {
                any_waits = true;
            }
        }
        assert!(any_waits, "no seed ever parked in wait()");
    }

    #[test]
    fn tolerates_odd_and_single_thread_counts() {
        for threads in [1, 3] {
            let mut k = PingPong::new(threads, 0.05);
            drive(&mut k, threads);
            assert!(k.progress() > 0.999);
            assert!(!k.outcomes().contains("v=0"));
            assert!(k.outcomes().contains("bal=ok"));
        }
    }
}
