//! `litmus-handoff` — N threads hand one monitor around for R rounds each.
//!
//! Every round a thread acquires the shared monitor, runs a *multi-step*
//! critical section (the hold spans several scheduler-visible steps, so
//! preemption, drain windows and wake-ups all land inside it), bumps a
//! shared counter, and releases. Two invariants are witnessed directly in
//! kernel state:
//!
//! * **Mutual exclusion** — an `in_cs` occupancy count is incremented on
//!   acquire and decremented before release; it exceeding 1 means the
//!   monitor handed ownership to two threads at once.
//! * **Lost updates** — the counter must end at exactly
//!   `threads × rounds`; a lost handoff or replayed critical section
//!   shows up as a wrong sum.
//!
//! The observation label is `"sum=ok|bad,mx=ok|bad,c=<bucket>"` where the
//! bucket classifies how much contention the schedule actually produced
//! (`0`, `lo`, `hi`) — the allowed table accepts any bucket but only
//! `ok` flags.

use jsmt_isa::Addr;
use jsmt_jvm::{EmitCtx, JvmProcess, MethodId, MonitorId, MonitorOutcome};

use super::{bucket, rounds_of, seed_of, spin_tick};
use crate::util::{LibCode, Rng};
use crate::{BlockReason, Kernel, StepResult};

/// The lock-handoff litmus kernel. See the module docs.
#[derive(Debug)]
pub struct LockHandoff {
    threads: usize,
    rounds: u64,
    rngs: Vec<Rng>,
    phase: Vec<u8>,
    spin_left: Vec<u32>,
    hold_left: Vec<u32>,
    cur_round: Vec<u64>,
    counter: u64,
    in_cs: u32,
    mx_viol: u64,
    finished_count: u32,
    final_label: Option<String>,
    mon: Option<MonitorId>,
    base: Addr,
    m_cs: Option<MethodId>,
    lib: Option<LibCode>,
}

impl LockHandoff {
    /// Create the kernel: `scale` sizes the round count and seeds the
    /// interleaving (see the family docs).
    pub fn new(threads: usize, scale: f64) -> Self {
        assert!(threads >= 1);
        let seed = seed_of(scale);
        LockHandoff {
            threads,
            rounds: rounds_of(scale, 12, 90.0),
            rngs: (0..threads)
                .map(|t| Rng::new(seed ^ (0x10C4 + t as u64 * 2741)))
                .collect(),
            phase: vec![0; threads],
            spin_left: vec![0; threads],
            hold_left: vec![0; threads],
            cur_round: vec![0; threads],
            counter: 0,
            in_cs: 0,
            mx_viol: 0,
            finished_count: 0,
            final_label: None,
            mon: None,
            base: 0,
            m_cs: None,
            lib: None,
        }
    }

    /// Final shared-counter value (for tests).
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// Mutual-exclusion violations witnessed (for tests).
    pub fn mx_violations(&self) -> u64 {
        self.mx_viol
    }

    fn addr_counter(&self) -> Addr {
        self.base
    }

    fn scratch(&self) -> Addr {
        self.base + 4096
    }

    fn spin(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> bool {
        if self.spin_left[tid] > 0 {
            self.spin_left[tid] -= 1;
            let scratch = self.scratch();
            spin_tick(
                self.lib.as_mut().expect("setup"),
                &mut self.rngs[tid],
                ctx,
                scratch,
            );
            return true;
        }
        false
    }

    fn arm_spin(&mut self, tid: usize, span: u64) {
        self.spin_left[tid] = 1 + self.rngs[tid].below(span) as u32;
    }
}

impl Kernel for LockHandoff {
    fn name(&self) -> &str {
        "litmus-handoff"
    }

    fn num_threads(&self) -> usize {
        self.threads
    }

    fn setup(&mut self, jvm: &mut JvmProcess) {
        self.base = jvm.alloc_native(8192, 64);
        self.mon = Some(jvm.monitors_mut().create());
        self.m_cs = Some(jvm.methods_mut().register("LitmusHandoff.cs", 510));
        self.lib = Some(LibCode::register(jvm, "LitmusHandoff", 6, 700));
    }

    fn step(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        if self.cur_round[tid] >= self.rounds {
            return StepResult::finished();
        }
        ctx.call(self.m_cs.expect("setup"));
        let mon = self.mon.expect("setup");
        match self.phase[tid] {
            0 => {
                self.arm_spin(tid, 6);
                self.phase[tid] = 1;
                self.spin(tid, ctx);
                StepResult::ran()
            }
            1 => {
                if self.spin(tid, ctx) {
                    return StepResult::ran();
                }
                ctx.atomic(self.addr_counter());
                let already = ctx.process().monitors().owner(mon) == Some(tid as u32);
                if !already {
                    match ctx.process().monitors_mut().enter(mon, tid as u32) {
                        MonitorOutcome::Contended => {
                            return StepResult::blocked(BlockReason::Monitor(mon));
                        }
                        MonitorOutcome::Acquired => {}
                    }
                }
                self.in_cs += 1;
                if self.in_cs > 1 {
                    self.mx_viol += 1;
                }
                self.hold_left[tid] = 1 + self.rngs[tid].below(3) as u32;
                self.phase[tid] = 2;
                StepResult::ran()
            }
            2 => {
                // Inside the critical section: the hold spans several
                // steps so scheduling events land while the lock is held.
                self.hold_left[tid] -= 1;
                let scratch = self.scratch();
                ctx.load(self.addr_counter());
                spin_tick(
                    self.lib.as_mut().expect("setup"),
                    &mut self.rngs[tid],
                    ctx,
                    scratch,
                );
                if self.hold_left[tid] > 0 {
                    return StepResult::ran();
                }
                self.counter += 1;
                ctx.store(self.addr_counter());
                self.in_cs -= 1;
                let next = ctx.process().monitors_mut().exit(mon, tid as u32);
                self.phase[tid] = 3;
                self.arm_spin(tid, 4);
                StepResult::ran().with_wake(next.map(|t| vec![t as usize]).unwrap_or_default())
            }
            _ => {
                if self.spin(tid, ctx) {
                    return StepResult::ran();
                }
                self.cur_round[tid] += 1;
                self.phase[tid] = 0;
                if self.cur_round[tid] == self.rounds {
                    self.finished_count += 1;
                    if self.finished_count == self.threads as u32 {
                        let sum_ok = self.counter == self.rounds * self.threads as u64;
                        let mx_ok = self.mx_viol == 0;
                        let c = bucket(ctx.process().monitors().contended(mon));
                        self.final_label = Some(format!(
                            "sum={},mx={},c={}",
                            if sum_ok { "ok" } else { "bad" },
                            if mx_ok { "ok" } else { "bad" },
                            c
                        ));
                    }
                    StepResult::finished()
                } else {
                    StepResult::ran()
                }
            }
        }
    }

    fn progress(&self) -> f64 {
        let done: u64 = self.cur_round.iter().sum();
        done as f64 / (self.rounds * self.threads as u64) as f64
    }

    fn observation(&self) -> Option<String> {
        self.final_label.clone()
    }

    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        use jsmt_snapshot::Snapshotable;
        for rng in &self.rngs {
            rng.save_state(w);
        }
        for &v in &self.phase {
            w.put_u8(v);
        }
        for &v in &self.spin_left {
            w.put_u32(v);
        }
        for &v in &self.hold_left {
            w.put_u32(v);
        }
        for &v in &self.cur_round {
            w.put_u64(v);
        }
        w.put_u64(self.counter);
        w.put_u32(self.in_cs);
        w.put_u64(self.mx_viol);
        w.put_u32(self.finished_count);
        w.put_bool(self.final_label.is_some());
        if let Some(l) = &self.final_label {
            w.put_str(l);
        }
        self.lib.as_ref().expect("setup").save_state(w);
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        use jsmt_snapshot::Snapshotable;
        for rng in &mut self.rngs {
            rng.restore_state(r)?;
        }
        for v in &mut self.phase {
            *v = r.get_u8()?;
        }
        for v in &mut self.spin_left {
            *v = r.get_u32()?;
        }
        for v in &mut self.hold_left {
            *v = r.get_u32()?;
        }
        for v in &mut self.cur_round {
            *v = r.get_u64()?;
        }
        self.counter = r.get_u64()?;
        self.in_cs = r.get_u32()?;
        self.mx_viol = r.get_u64()?;
        self.finished_count = r.get_u32()?;
        self.final_label = if r.get_bool()? {
            Some(r.get_str()?)
        } else {
            None
        };
        self.lib.as_mut().expect("setup").restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::litmus::testutil::drive;

    #[test]
    fn counter_exact_and_mutual_exclusion_holds() {
        for seed in 0..24u64 {
            let scale = 0.02 + seed as f64 * 0.001;
            let mut k = LockHandoff::new(3, scale);
            drive(&mut k, 3);
            assert_eq!(k.counter(), 3 * rounds_of(scale, 12, 90.0));
            assert_eq!(k.mx_violations(), 0);
            let obs = k.observation().expect("label set at finish");
            assert!(obs.starts_with("sum=ok,mx=ok,c="), "{obs}");
        }
    }

    #[test]
    fn tolerates_any_thread_count() {
        for threads in [1, 2] {
            let mut k = LockHandoff::new(threads, 0.05);
            drive(&mut k, threads);
            assert_eq!(k.counter(), threads as u64 * rounds_of(0.05, 12, 90.0));
            assert_eq!(k.mx_violations(), 0);
        }
    }
}
