//! `litmus-mp` — the message-passing litmus shape.
//!
//! A writer publishes `data = 1` and then raises `flag = 1`; a reader
//! samples `r0 = flag` and then `r1 = data`. Under the simulator's
//! sequentially-consistent memory (kernel state mutates at step
//! granularity, in program order), the outcome `r0 = 1, r1 = 0` is
//! forbidden: seeing the flag up implies the data write already
//! happened. The writer maintains the invariant at *every* instant by
//! ordering the round reset too (flag down before data down), and only
//! resets after the reader's ack, so no sample point between the
//! reader's two loads can expose `flag ∧ ¬data`.
//!
//! Each round re-arms with seed-varied spin widths on both sides, so a
//! seed sweep samples many distinct schedules; the observation label is
//! the sorted set of outcomes seen across rounds (e.g. `"00+01+11"`).

use std::collections::BTreeSet;

use jsmt_isa::Addr;
use jsmt_jvm::{EmitCtx, JvmProcess, MethodId};

use super::{join_labels, restore_labels, rounds_of, save_labels, seed_of, spin_tick, Scoreboard};
use crate::util::{LibCode, Rng};
use crate::{Kernel, StepResult};

const PAIR_STRIDE: u64 = 256;

/// The message-passing litmus kernel. See the module docs.
#[derive(Debug)]
pub struct MessagePassing {
    threads: usize,
    rounds: u64,
    rngs: Vec<Rng>,
    phase: Vec<u8>,
    spin_left: Vec<u32>,
    cur_round: Vec<u64>,
    data: Vec<u64>,
    flag: Vec<u64>,
    ack: Vec<u64>,
    wsync: Vec<u64>,
    r0: Vec<u64>,
    seen: BTreeSet<String>,
    score: Scoreboard,
    base: Addr,
    m_proto: Option<MethodId>,
    lib: Option<LibCode>,
}

impl MessagePassing {
    /// Create the kernel: `scale` sizes the round count and seeds the
    /// interleaving (see the family docs).
    pub fn new(threads: usize, scale: f64) -> Self {
        assert!(threads >= 1);
        let seed = seed_of(scale);
        let pairs = threads.div_ceil(2);
        MessagePassing {
            threads,
            rounds: rounds_of(scale, 16, 120.0),
            rngs: (0..threads)
                .map(|t| Rng::new(seed ^ (0xA11CE + t as u64 * 7919)))
                .collect(),
            phase: vec![0; threads],
            spin_left: vec![0; threads],
            cur_round: vec![0; threads],
            data: vec![0; pairs],
            flag: vec![0; pairs],
            ack: vec![0; pairs],
            wsync: vec![0; pairs],
            r0: vec![0; pairs],
            seen: BTreeSet::new(),
            score: Scoreboard::default(),
            base: 0,
            m_proto: None,
            lib: None,
        }
    }

    /// Outcomes seen so far (for tests).
    pub fn outcomes(&self) -> &BTreeSet<String> {
        &self.seen
    }

    fn is_solo(&self, tid: usize) -> bool {
        self.threads % 2 == 1 && tid == self.threads - 1
    }

    fn addr_data(&self, p: usize) -> Addr {
        self.base + p as u64 * PAIR_STRIDE
    }

    fn addr_flag(&self, p: usize) -> Addr {
        self.base + p as u64 * PAIR_STRIDE + 8
    }

    fn addr_ack(&self, p: usize) -> Addr {
        self.base + p as u64 * PAIR_STRIDE + 16
    }

    fn addr_wsync(&self, p: usize) -> Addr {
        self.base + p as u64 * PAIR_STRIDE + 24
    }

    fn scratch(&self) -> Addr {
        self.base + 4096
    }

    fn spin(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> bool {
        if self.spin_left[tid] > 0 {
            self.spin_left[tid] -= 1;
            let scratch = self.scratch();
            spin_tick(
                self.lib.as_mut().expect("setup"),
                &mut self.rngs[tid],
                ctx,
                scratch,
            );
            return true;
        }
        false
    }

    fn arm_spin(&mut self, tid: usize, span: u64) {
        self.spin_left[tid] = 1 + self.rngs[tid].below(span) as u32;
    }

    /// End-of-round scoreboard fold; advances the round on success.
    fn round_end(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        let wake = match self.score.update(tid, ctx) {
            Ok(wake) => wake,
            Err(blocked) => return blocked,
        };
        self.cur_round[tid] += 1;
        self.phase[tid] = 0;
        if self.cur_round[tid] == self.rounds {
            StepResult::finished().with_wake(wake)
        } else {
            StepResult::ran().with_wake(wake)
        }
    }

    fn step_writer(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        let p = tid / 2;
        ctx.call(self.m_proto.expect("setup"));
        match self.phase[tid] {
            0 => {
                self.arm_spin(tid, 5);
                self.phase[tid] = 1;
                self.spin(tid, ctx);
                StepResult::ran()
            }
            1 => {
                if !self.spin(tid, ctx) {
                    self.data[p] = 1;
                    ctx.store(self.addr_data(p));
                    self.arm_spin(tid, 4);
                    self.phase[tid] = 2;
                }
                StepResult::ran()
            }
            2 => {
                if !self.spin(tid, ctx) {
                    self.flag[p] = 1;
                    ctx.store(self.addr_flag(p));
                    self.phase[tid] = 3;
                }
                StepResult::ran()
            }
            3 => {
                // Poll for the reader's ack, then retract flag before
                // data — the invariant `flag == 1 ⇒ data == 1` must hold
                // at every step boundary.
                ctx.load(self.addr_ack(p));
                ctx.branch(self.ack[p] != 0, false);
                if self.ack[p] == self.cur_round[tid] + 1 {
                    self.flag[p] = 0;
                    ctx.store(self.addr_flag(p));
                    self.data[p] = 0;
                    ctx.store(self.addr_data(p));
                    // Publish the round boundary: the reader will not
                    // start sampling the next round until this lands, so
                    // its sample pair can never straddle the reset.
                    self.wsync[p] = self.cur_round[tid] + 1;
                    ctx.store(self.addr_wsync(p));
                    self.phase[tid] = 4;
                } else {
                    ctx.alu(3);
                }
                StepResult::ran()
            }
            _ => self.round_end(tid, ctx),
        }
    }

    fn step_reader(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        let p = tid / 2;
        ctx.call(self.m_proto.expect("setup"));
        match self.phase[tid] {
            0 => {
                // Gate on the previous round's writer-side reset having
                // fully landed before sampling anything.
                ctx.load(self.addr_wsync(p));
                ctx.branch(self.wsync[p] == self.cur_round[tid], false);
                if self.wsync[p] == self.cur_round[tid] {
                    self.arm_spin(tid, 6);
                    self.phase[tid] = 1;
                    self.spin(tid, ctx);
                } else {
                    ctx.alu(2);
                }
                StepResult::ran()
            }
            1 => {
                if !self.spin(tid, ctx) {
                    self.r0[p] = self.flag[p];
                    ctx.load(self.addr_flag(p));
                    self.arm_spin(tid, 3);
                    self.phase[tid] = 2;
                }
                StepResult::ran()
            }
            2 => {
                if !self.spin(tid, ctx) {
                    let r1 = self.data[p];
                    ctx.load(self.addr_data(p));
                    self.seen
                        .insert(format!("{}{}", self.r0[p].min(1), r1.min(1)));
                    self.phase[tid] = 3;
                }
                StepResult::ran()
            }
            3 => {
                self.ack[p] = self.cur_round[tid] + 1;
                ctx.store(self.addr_ack(p));
                self.phase[tid] = 4;
                StepResult::ran()
            }
            _ => self.round_end(tid, ctx),
        }
    }

    /// A leftover unpaired thread runs the whole protocol alone: it can
    /// only ever observe `11`.
    fn step_solo(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        let p = tid / 2;
        ctx.call(self.m_proto.expect("setup"));
        match self.phase[tid] {
            0 => {
                self.arm_spin(tid, 4);
                self.phase[tid] = 1;
                self.spin(tid, ctx);
                StepResult::ran()
            }
            1 => {
                if !self.spin(tid, ctx) {
                    self.data[p] = 1;
                    ctx.store(self.addr_data(p));
                    self.flag[p] = 1;
                    ctx.store(self.addr_flag(p));
                    self.phase[tid] = 2;
                }
                StepResult::ran()
            }
            2 => {
                let r0 = self.flag[p];
                ctx.load(self.addr_flag(p));
                let r1 = self.data[p];
                ctx.load(self.addr_data(p));
                self.seen.insert(format!("{}{}", r0.min(1), r1.min(1)));
                self.flag[p] = 0;
                self.data[p] = 0;
                ctx.store(self.addr_flag(p));
                ctx.store(self.addr_data(p));
                self.phase[tid] = 4;
                StepResult::ran()
            }
            _ => self.round_end(tid, ctx),
        }
    }
}

impl Kernel for MessagePassing {
    fn name(&self) -> &str {
        "litmus-mp"
    }

    fn num_threads(&self) -> usize {
        self.threads
    }

    fn setup(&mut self, jvm: &mut JvmProcess) {
        self.base = jvm.alloc_native(8192, 64);
        self.m_proto = Some(jvm.methods_mut().register("LitmusMP.round", 420));
        self.lib = Some(LibCode::register(jvm, "LitmusMP", 6, 700));
        self.score.setup(jvm, self.base + 8064);
    }

    fn step(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        if self.cur_round[tid] >= self.rounds {
            return StepResult::finished();
        }
        if self.is_solo(tid) {
            self.step_solo(tid, ctx)
        } else if tid.is_multiple_of(2) {
            self.step_writer(tid, ctx)
        } else {
            self.step_reader(tid, ctx)
        }
    }

    fn progress(&self) -> f64 {
        let done: u64 = self.cur_round.iter().sum();
        done as f64 / (self.rounds * self.threads as u64) as f64
    }

    fn observation(&self) -> Option<String> {
        Some(join_labels(&self.seen))
    }

    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        use jsmt_snapshot::Snapshotable;
        for rng in &self.rngs {
            rng.save_state(w);
        }
        for &v in &self.phase {
            w.put_u8(v);
        }
        for &v in &self.spin_left {
            w.put_u32(v);
        }
        for &v in &self.cur_round {
            w.put_u64(v);
        }
        for vs in [&self.data, &self.flag, &self.ack, &self.wsync, &self.r0] {
            for &v in vs {
                w.put_u64(v);
            }
        }
        save_labels(w, &self.seen);
        self.score.save_state(w);
        self.lib.as_ref().expect("setup").save_state(w);
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        use jsmt_snapshot::Snapshotable;
        for rng in &mut self.rngs {
            rng.restore_state(r)?;
        }
        for v in &mut self.phase {
            *v = r.get_u8()?;
        }
        for v in &mut self.spin_left {
            *v = r.get_u32()?;
        }
        for v in &mut self.cur_round {
            *v = r.get_u64()?;
        }
        for vs in [
            &mut self.data,
            &mut self.flag,
            &mut self.ack,
            &mut self.wsync,
            &mut self.r0,
        ] {
            for v in vs.iter_mut() {
                *v = r.get_u64()?;
            }
        }
        self.seen = restore_labels(r)?;
        self.score.restore_state(r)?;
        self.lib.as_mut().expect("setup").restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::litmus::testutil::drive;

    #[test]
    fn never_observes_flag_without_data() {
        for seed in 0..24u64 {
            let scale = 0.02 + seed as f64 * 0.001;
            let mut k = MessagePassing::new(2, scale);
            drive(&mut k, 2);
            for label in k.outcomes() {
                assert_ne!(label, "10", "forbidden outcome at scale {scale}");
            }
            assert!(!k.outcomes().is_empty());
        }
    }

    #[test]
    fn tolerates_odd_and_single_thread_counts() {
        for threads in [1, 3] {
            let mut k = MessagePassing::new(threads, 0.05);
            drive(&mut k, threads);
            assert!(k.progress() > 0.999);
            assert!(k.outcomes().iter().all(|l| l != "10"));
        }
    }
}
