//! `litmus-convoy` — N threads convoy through a cyclic barrier.
//!
//! Each round every thread does a seed-varied amount of private work and
//! then arrives at a shared [`crate::util::Barrier`]; the *last* arriver
//! releases the convoy. Two things are checked at every release:
//!
//! * **Phase agreement** — every thread's per-round phase counter must be
//!   equal at the instant of release: a barrier that releases early (or a
//!   thread that skips an arrival) shows up as a mismatch, counted in
//!   `viol`.
//! * **Release identity** — which thread was last varies with the seeded
//!   work widths; the set of observed last-arrivers is part of the label,
//!   so the seed sweep demonstrates the schedule actually varies while
//!   each individual element stays in the allowed table.
//!
//! A parked thread that gets spuriously re-stepped before its generation
//! ticks re-blocks without re-arriving (arrivals are strictly once per
//! round), mirroring how real parked threads tolerate spurious wakeups.
//!
//! Observation: `"l<tid>"` per witnessed last-arriver, plus `"viol=0"`
//! (or `"viol=bad"` on any phase mismatch), joined with `+`.

use std::collections::BTreeSet;

use jsmt_isa::Addr;
use jsmt_jvm::{EmitCtx, JvmProcess, MethodId};

use super::{join_labels, restore_labels, rounds_of, save_labels, seed_of, spin_tick};
use crate::util::{Barrier, BarrierWait, LibCode, Rng};
use crate::{BlockReason, Kernel, StepResult};

/// The barrier-convoy litmus kernel. See the module docs.
#[derive(Debug)]
pub struct BarrierConvoy {
    threads: usize,
    rounds: u64,
    rngs: Vec<Rng>,
    phase: Vec<u8>,
    spin_left: Vec<u32>,
    cur_round: Vec<u64>,
    phase_count: Vec<u64>,
    my_gen: Vec<u64>,
    barrier: Barrier,
    viol: u64,
    seen: BTreeSet<String>,
    base: Addr,
    m_round: Option<MethodId>,
    lib: Option<LibCode>,
}

impl BarrierConvoy {
    /// Create the kernel: `scale` sizes the round count and seeds the
    /// interleaving (see the family docs).
    pub fn new(threads: usize, scale: f64) -> Self {
        assert!(threads >= 1);
        let seed = seed_of(scale);
        BarrierConvoy {
            threads,
            rounds: rounds_of(scale, 14, 100.0),
            rngs: (0..threads)
                .map(|t| Rng::new(seed ^ (0xBA44 + t as u64 * 4409)))
                .collect(),
            phase: vec![0; threads],
            spin_left: vec![0; threads],
            cur_round: vec![0; threads],
            phase_count: vec![0; threads],
            my_gen: vec![0; threads],
            barrier: Barrier::new(threads),
            viol: 0,
            seen: BTreeSet::new(),
            base: 0,
            m_round: None,
            lib: None,
        }
    }

    /// Phase-agreement violations witnessed at releases (for tests).
    pub fn violations(&self) -> u64 {
        self.viol
    }

    /// Set of last-arriver labels seen so far (for tests).
    pub fn last_arrivers(&self) -> &BTreeSet<String> {
        &self.seen
    }

    fn addr_barrier(&self) -> Addr {
        self.base
    }

    fn scratch(&self) -> Addr {
        self.base + 4096
    }

    fn spin(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> bool {
        if self.spin_left[tid] > 0 {
            self.spin_left[tid] -= 1;
            let scratch = self.scratch();
            spin_tick(
                self.lib.as_mut().expect("setup"),
                &mut self.rngs[tid],
                ctx,
                scratch,
            );
            return true;
        }
        false
    }

    /// The last arriver audits phase agreement and records its identity.
    fn on_release(&mut self, tid: usize) {
        let expect = self.phase_count[tid];
        self.viol += self.phase_count.iter().filter(|&&c| c != expect).count() as u64;
        self.seen.insert(format!("l{tid}"));
        self.cur_round[tid] += 1;
        self.phase[tid] = 0;
    }
}

impl Kernel for BarrierConvoy {
    fn name(&self) -> &str {
        "litmus-convoy"
    }

    fn num_threads(&self) -> usize {
        self.threads
    }

    fn setup(&mut self, jvm: &mut JvmProcess) {
        self.base = jvm.alloc_native(8192, 64);
        self.m_round = Some(jvm.methods_mut().register("LitmusConvoy.round", 460));
        self.lib = Some(LibCode::register(jvm, "LitmusConvoy", 6, 700));
    }

    fn step(&mut self, tid: usize, ctx: &mut EmitCtx<'_>) -> StepResult {
        if self.cur_round[tid] >= self.rounds {
            return StepResult::finished();
        }
        ctx.call(self.m_round.expect("setup"));
        match self.phase[tid] {
            0 => {
                self.spin_left[tid] = 1 + self.rngs[tid].below(8) as u32;
                self.phase[tid] = 1;
                self.spin(tid, ctx);
                StepResult::ran()
            }
            1 => {
                if self.spin(tid, ctx) {
                    return StepResult::ran();
                }
                self.phase_count[tid] += 1;
                ctx.atomic(self.addr_barrier());
                self.my_gen[tid] = self.barrier.generations();
                match self.barrier.arrive(tid) {
                    BarrierWait::Wait => {
                        self.phase[tid] = 2;
                        StepResult::blocked(BlockReason::Barrier)
                    }
                    BarrierWait::Release(wake) => {
                        self.on_release(tid);
                        StepResult::ran().with_wake(wake)
                    }
                }
            }
            _ => {
                // Woken from the barrier — or spuriously re-stepped while
                // still parked. Only a generation tick means release.
                ctx.load(self.addr_barrier());
                ctx.branch(self.barrier.generations() > self.my_gen[tid], false);
                if self.barrier.generations() > self.my_gen[tid] {
                    self.cur_round[tid] += 1;
                    self.phase[tid] = 0;
                    StepResult::ran()
                } else {
                    StepResult::blocked(BlockReason::Barrier)
                }
            }
        }
    }

    fn progress(&self) -> f64 {
        let done: u64 = self.cur_round.iter().sum();
        done as f64 / (self.rounds * self.threads as u64) as f64
    }

    fn observation(&self) -> Option<String> {
        let mut labels = self.seen.clone();
        labels.insert(if self.viol == 0 {
            "viol=0".to_string()
        } else {
            "viol=bad".to_string()
        });
        Some(join_labels(&labels))
    }

    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        use jsmt_snapshot::Snapshotable;
        for rng in &self.rngs {
            rng.save_state(w);
        }
        for &v in &self.phase {
            w.put_u8(v);
        }
        for &v in &self.spin_left {
            w.put_u32(v);
        }
        for &v in &self.cur_round {
            w.put_u64(v);
        }
        for &v in &self.phase_count {
            w.put_u64(v);
        }
        for &v in &self.my_gen {
            w.put_u64(v);
        }
        self.barrier.save_state(w);
        w.put_u64(self.viol);
        save_labels(w, &self.seen);
        self.lib.as_ref().expect("setup").save_state(w);
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        use jsmt_snapshot::Snapshotable;
        for rng in &mut self.rngs {
            rng.restore_state(r)?;
        }
        for v in &mut self.phase {
            *v = r.get_u8()?;
        }
        for v in &mut self.spin_left {
            *v = r.get_u32()?;
        }
        for v in &mut self.cur_round {
            *v = r.get_u64()?;
        }
        for v in &mut self.phase_count {
            *v = r.get_u64()?;
        }
        for v in &mut self.my_gen {
            *v = r.get_u64()?;
        }
        self.barrier.restore_state(r)?;
        self.viol = r.get_u64()?;
        self.seen = restore_labels(r)?;
        self.lib.as_mut().expect("setup").restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::litmus::testutil::drive;

    #[test]
    fn phase_agreement_holds_across_seeds() {
        let mut arrivers = BTreeSet::new();
        for seed in 0..24u64 {
            let scale = 0.02 + seed as f64 * 0.001;
            let mut k = BarrierConvoy::new(3, scale);
            drive(&mut k, 3);
            assert_eq!(k.violations(), 0, "scale {scale}");
            assert!(k.barrier.generations() >= rounds_of(scale, 14, 100.0));
            arrivers.extend(k.last_arrivers().iter().cloned());
        }
        // The sweep must actually vary the schedule: with the round-robin
        // driver thread order is fixed, but seeded spin widths differ.
        assert!(!arrivers.is_empty());
    }

    #[test]
    fn tolerates_any_thread_count() {
        for threads in [1, 2] {
            let mut k = BarrierConvoy::new(threads, 0.05);
            drive(&mut k, threads);
            assert!(k.progress() > 0.999);
            assert_eq!(k.violations(), 0);
        }
    }
}
