//! # jsmt-stats
//!
//! Statistics utilities for the experiment drivers: quartile/box-chart
//! summaries (Figure 8 is a box chart), means, correlation (the paper's
//! offline analysis correlates trace-cache misses with pairing
//! performance), and simple linear regression.
//!
//! ## Example
//!
//! ```
//! use jsmt_stats::BoxSummary;
//!
//! let s = BoxSummary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
//! assert_eq!(s.median, 3.0);
//! assert_eq!(s.min, 1.0);
//! assert_eq!(s.max, 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Five-number summary plus mean — exactly what the paper's Figure 8 box
/// chart displays ("the middle line and the square in the box represent
/// median and average ... the 25th and 75th percentile ... two whiskers").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxSummary {
    /// Observed minimum (lower whisker).
    pub min: f64,
    /// 25th percentile (lower box edge).
    pub q1: f64,
    /// Median (middle line).
    pub median: f64,
    /// 75th percentile (upper box edge).
    pub q3: f64,
    /// Observed maximum (upper whisker).
    pub max: f64,
    /// Arithmetic mean (the square in the box).
    pub mean: f64,
    /// Sample count.
    pub n: usize,
}

impl BoxSummary {
    /// Summarize samples; `None` when empty. NaNs are rejected by panic
    /// (they indicate a broken experiment, not data).
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn from_samples(samples: &[f64]) -> Option<BoxSummary> {
        if samples.is_empty() {
            return None;
        }
        assert!(samples.iter().all(|x| !x.is_nan()), "NaN sample");
        let mut v = samples.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Some(BoxSummary {
            min: v[0],
            q1: percentile_sorted(&v, 0.25),
            median: percentile_sorted(&v, 0.5),
            q3: percentile_sorted(&v, 0.75),
            max: v[v.len() - 1],
            mean: mean(&v),
            n: v.len(),
        })
    }
}

/// Percentile (0..=1) of an ascending-sorted slice via linear
/// interpolation.
///
/// # Panics
///
/// Panics on an empty slice or `p` outside `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty slice");
    assert!((0.0..=1.0).contains(&p), "p out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = p * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Arithmetic mean (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean; panics on non-positive inputs.
///
/// # Panics
///
/// Panics if any sample is `<= 0`.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "geomean needs positive samples"
    );
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Pearson correlation coefficient of paired samples.
///
/// Returns 0 when either series is constant (no linear relation can be
/// measured).
///
/// # Panics
///
/// Panics if the series lengths differ.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Least-squares line `y = a + b x`; returns `(a, b)`.
///
/// # Panics
///
/// Panics if lengths differ or fewer than two points are given.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    assert!(xs.len() >= 2, "need at least two points");
    let mx = mean(xs);
    let my = mean(ys);
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        num += (x - mx) * (y - my);
        den += (x - mx) * (x - mx);
    }
    let b = if den == 0.0 { 0.0 } else { num / den };
    (my - b * mx, b)
}

/// Spearman rank correlation of paired samples (Pearson over ranks,
/// average ranks for ties).
///
/// # Panics
///
/// Panics if the series lengths differ.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    pearson(&ranks(xs), &ranks(ys))
}

/// Average ranks (1-based) of a sample vector, ties sharing their mean
/// rank.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("no NaNs"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Relative change `(new - old) / old`, in percent.
pub fn pct_change(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        (new - old) / old * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_summary_of_known_data() {
        let s = BoxSummary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.5);
        assert_eq!(s.mean, 5.0);
        assert!(s.q1 >= s.min && s.q1 <= s.median);
        assert!(s.q3 >= s.median && s.q3 <= s.max);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn box_summary_empty_is_none() {
        assert!(BoxSummary::from_samples(&[]).is_none());
    }

    #[test]
    fn percentiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&v, 0.0), 1.0);
        assert_eq!(percentile_sorted(&v, 1.0), 4.0);
        assert_eq!(percentile_sorted(&v, 0.5), 2.5);
    }

    #[test]
    fn means() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn correlation_signs() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[5.0; 4]), 0.0);
    }

    #[test]
    fn regression_recovers_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let (a, b) = linear_fit(&xs, &ys);
        assert!((a - 1.0).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        assert_eq!(stddev(&[3.0, 3.0, 3.0]), 0.0);
        assert!(stddev(&[1.0, 5.0]) > 0.0);
    }

    #[test]
    fn ranks_handle_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn spearman_monotone_is_one() {
        let xs = [1.0, 2.0, 5.0, 9.0];
        let ys = [2.0, 40.0, 41.0, 1000.0]; // monotone, nonlinear
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        let inv = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&xs, &inv) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pct_change_basics() {
        assert_eq!(pct_change(2.0, 3.0), 50.0);
        assert_eq!(pct_change(0.0, 3.0), 0.0);
        assert!(pct_change(4.0, 3.0) < 0.0);
    }
}
