//! Property-based tests on the statistics utilities.

use jsmt_stats::{linear_fit, mean, pearson, percentile_sorted, ranks, spearman, BoxSummary};
use proptest::prelude::*;

proptest! {
    /// A box summary is internally ordered and bounded by the data.
    #[test]
    fn box_summary_ordered(mut xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = BoxSummary::from_samples(&xs).unwrap();
        prop_assert!(s.min <= s.q1 + 1e-9);
        prop_assert!(s.q1 <= s.median + 1e-9);
        prop_assert!(s.median <= s.q3 + 1e-9);
        prop_assert!(s.q3 <= s.max + 1e-9);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(s.min, xs[0]);
        prop_assert_eq!(s.max, xs[xs.len() - 1]);
        prop_assert_eq!(s.n, xs.len());
    }

    /// Percentiles are monotone in p.
    #[test]
    fn percentiles_monotone(mut xs in prop::collection::vec(-1e6f64..1e6, 1..100),
                            p1 in 0.0f64..1.0, p2 in 0.0f64..1.0) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(percentile_sorted(&xs, lo) <= percentile_sorted(&xs, hi) + 1e-9);
    }

    /// Correlations stay in [-1, 1]; correlation with self is 1 for
    /// non-constant data.
    #[test]
    fn correlation_bounds(xs in prop::collection::vec(-1e3f64..1e3, 2..100),
                          ys in prop::collection::vec(-1e3f64..1e3, 2..100)) {
        let n = xs.len().min(ys.len());
        let (xs, ys) = (&xs[..n], &ys[..n]);
        let r = pearson(xs, ys);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
        let rho = spearman(xs, ys);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rho), "rho = {rho}");
        if xs.iter().any(|&x| x != xs[0]) {
            prop_assert!((pearson(xs, xs) - 1.0).abs() < 1e-9);
        }
    }

    /// Ranks sum to n(n+1)/2 (a permutation invariant, ties included).
    #[test]
    fn ranks_sum_invariant(xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let r = ranks(&xs);
        let n = xs.len() as f64;
        prop_assert!((r.iter().sum::<f64>() - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    /// The least-squares line passes through the centroid.
    #[test]
    fn regression_through_centroid(xs in prop::collection::vec(-1e3f64..1e3, 2..50),
                                   ys in prop::collection::vec(-1e3f64..1e3, 2..50)) {
        let n = xs.len().min(ys.len());
        let (xs, ys) = (&xs[..n], &ys[..n]);
        let (a, b) = linear_fit(xs, ys);
        let (mx, my) = (mean(xs), mean(ys));
        prop_assert!((a + b * mx - my).abs() < 1e-6, "line must pass through centroid");
    }
}
