//! ASCII table rendering.

/// A simple column-aligned ASCII table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
            title: None,
        }
    }

    /// Builder-style: set a title line printed above the table.
    pub fn with_title(mut self, title: &str) -> Self {
        self.title = Some(title.to_string());
        self
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string (trailing newline included).
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(t);
            out.push('\n');
        }
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("| ");
                }
                line.push_str(&format!("{:<width$} ", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name".into(), "value".into()]).with_title("T");
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.starts_with("T\n"));
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[1].contains("name"));
        assert!(lines[3].starts_with("a"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn display_matches_render() {
        let mut t = Table::new(vec!["x".into()]);
        t.row(vec!["1".into()]);
        assert_eq!(format!("{t}"), t.render());
    }
}
