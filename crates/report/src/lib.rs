//! # jsmt-report
//!
//! Rendering for the reproduction harness: ASCII tables (Table 2), bar
//! charts (Figures 1–7, 10–12), box charts (Figure 8), a text heat map
//! (Figure 9's color map), and CSV output for external plotting.
//!
//! ## Example
//!
//! ```
//! use jsmt_report::Table;
//!
//! let mut t = Table::new(vec!["Benchmark".into(), "CPI".into()]);
//! t.row(vec!["MolDyn02".into(), "2.09".into()]);
//! let s = t.render();
//! assert!(s.contains("MolDyn02"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod charts;
mod csv;
mod table;

pub use charts::{bar_chart, box_chart, heat_map, series_chart};
pub use csv::Csv;
pub use table::Table;

/// Format a float with a sensible precision for reports.
pub fn fmt_num(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.3}")
    }
}

/// Format a fraction as a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_formatting_scales_precision() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(1234.5), "1234");
        assert_eq!(fmt_num(42.42), "42.4");
        assert_eq!(fmt_num(7.8642), "7.86");
        assert_eq!(fmt_num(0.1234), "0.123");
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(fmt_pct(0.9485), "94.85%");
    }
}
