//! Minimal CSV output (for external plotting of any figure).

/// A CSV document builder.
#[derive(Debug, Clone)]
pub struct Csv {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Csv {
    /// A CSV with the given header row.
    pub fn new(headers: Vec<String>) -> Self {
        Csv {
            headers,
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with RFC-4180-style quoting where needed.
    pub fn render(&self) -> String {
        let quote = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let line = |cells: &[String]| cells.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",");
        out.push_str(&line(&self.headers));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&line(r));
            out.push('\n');
        }
        out
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rows() {
        let mut c = Csv::new(vec!["a".into(), "b".into()]);
        c.row(vec!["1".into(), "2".into()]);
        assert_eq!(c.render(), "a,b\n1,2\n");
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn quotes_specials() {
        let mut c = Csv::new(vec!["a".into()]);
        c.row(vec!["x,y".into()]);
        c.row(vec!["he said \"hi\"".into()]);
        let s = c.render();
        assert!(s.contains("\"x,y\""));
        assert!(s.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged() {
        let mut c = Csv::new(vec!["a".into(), "b".into()]);
        c.row(vec!["1".into()]);
    }
}
