//! Text charts: bars, grouped series, box charts, heat maps.

use jsmt_stats::BoxSummary;

const BAR_WIDTH: usize = 46;

/// Horizontal bar chart: one `(label, value)` bar per entry, scaled to the
/// maximum value.
pub fn bar_chart(title: &str, entries: &[(String, f64)]) -> String {
    let mut out = format!("{title}\n");
    let max = entries
        .iter()
        .map(|(_, v)| *v)
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let lw = entries.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, v) in entries {
        let n = ((v / max) * BAR_WIDTH as f64).round() as usize;
        out.push_str(&format!(
            "  {label:<lw$} | {:<BAR_WIDTH$} {v:.3}\n",
            "#".repeat(n.min(BAR_WIDTH)),
        ));
    }
    out
}

/// Grouped series chart: for each label, one bar per series (e.g.
/// HT-off vs HT-on in Figures 1 and 3–7).
pub fn series_chart(title: &str, series_names: &[&str], rows: &[(String, Vec<f64>)]) -> String {
    let mut out = format!("{title}\n");
    let max = rows
        .iter()
        .flat_map(|(_, vs)| vs.iter().copied())
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let lw = rows
        .iter()
        .map(|(l, _)| l.len())
        .max()
        .unwrap_or(0)
        .max(series_names.iter().map(|s| s.len()).max().unwrap_or(0));
    for (label, values) in rows {
        assert_eq!(values.len(), series_names.len(), "series width mismatch");
        out.push_str(&format!("  {label}\n"));
        for (name, v) in series_names.iter().zip(values) {
            let n = ((v / max) * BAR_WIDTH as f64).round() as usize;
            out.push_str(&format!(
                "    {name:<lw$} | {:<BAR_WIDTH$} {v:.3}\n",
                "#".repeat(n.min(BAR_WIDTH)),
            ));
        }
    }
    out
}

/// Box chart in the paper's Figure 8 style: per label, whiskers at
/// min/max, a box from q1 to q3, `|` at the median, `o` at the mean.
pub fn box_chart(title: &str, entries: &[(String, BoxSummary)], lo: f64, hi: f64) -> String {
    assert!(hi > lo, "empty value range");
    let width = 60usize;
    let scale = |v: f64| -> usize {
        (((v - lo) / (hi - lo)).clamp(0.0, 1.0) * (width - 1) as f64).round() as usize
    };
    let lw = entries.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "  {:<lw$}  {:<width$}  (range {lo:.2}..{hi:.2})\n",
        "", "min|--[q1 med q3]--|max, o = mean"
    ));
    for (label, s) in entries {
        let mut line = vec![b' '; width];
        let (imin, iq1, imed, iq3, imax, imean) = (
            scale(s.min),
            scale(s.q1),
            scale(s.median),
            scale(s.q3),
            scale(s.max),
            scale(s.mean),
        );
        for c in line.iter_mut().take(imax + 1).skip(imin) {
            *c = b'-';
        }
        for c in line.iter_mut().take(iq3 + 1).skip(iq1) {
            *c = b'=';
        }
        line[imin] = b'|';
        line[imax] = b'|';
        line[imean] = b'o';
        line[imed] = b'#';
        out.push_str(&format!(
            "  {label:<lw$}  {}  med={:.2} mean={:.2}\n",
            String::from_utf8_lossy(&line),
            s.median,
            s.mean
        ));
    }
    out
}

/// Text heat map in the paper's Figure 9 style: a labeled matrix where
/// each cell's shade encodes the value ('.' low → '@' high), with the
/// numeric value printed alongside.
pub fn heat_map(title: &str, labels: &[String], matrix: &[Vec<f64>]) -> String {
    assert_eq!(
        labels.len(),
        matrix.len(),
        "matrix must be square with labels"
    );
    let lo = matrix
        .iter()
        .flatten()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let hi = matrix
        .iter()
        .flatten()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let shades = [b'.', b':', b'-', b'=', b'+', b'*', b'%', b'@'];
    let shade = |v: f64| -> char {
        if hi <= lo {
            return '=';
        }
        let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        shades[((t * (shades.len() - 1) as f64).round()) as usize] as char
    };
    let lw = labels.iter().map(|l| l.len()).max().unwrap_or(0);
    let mut out = format!(
        "{title}\n  (row benchmark's speedup when paired with column; '.'≈{lo:.2} '@'≈{hi:.2})\n"
    );
    // Column header: truncated names, one 8-char cell per column.
    out.push_str(&format!("  {:<lw$}  ", ""));
    for l in labels {
        out.push_str(&format!("{:>8}", &l[..l.len().min(7)]));
    }
    out.push('\n');
    for (i, l) in labels.iter().enumerate() {
        out.push_str(&format!("  {l:<lw$}  "));
        for v in &matrix[i] {
            out.push_str(&format!("  {}{:>5.2}", shade(*v), v));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_max() {
        let s = bar_chart("t", &[("a".into(), 1.0), ("b".into(), 2.0)]);
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        let hashes = |l: &str| l.matches('#').count();
        assert_eq!(hashes(lines[2]), BAR_WIDTH);
        assert_eq!(hashes(lines[1]), BAR_WIDTH / 2);
    }

    #[test]
    fn series_chart_emits_all_series() {
        let s = series_chart(
            "t",
            &["HT-off", "HT-on"],
            &[("MolDyn".into(), vec![0.5, 0.6])],
        );
        assert!(s.contains("HT-off"));
        assert!(s.contains("HT-on"));
        assert!(s.contains("MolDyn"));
    }

    #[test]
    fn box_chart_marks_quartiles() {
        let summary = BoxSummary::from_samples(&[1.0, 1.1, 1.2, 1.3, 1.4]).unwrap();
        let s = box_chart("t", &[("x".into(), summary)], 0.9, 1.5);
        assert!(s.contains('#'), "median marker");
        assert!(s.contains('o') || s.contains("mean"), "mean marker");
        assert!(s.contains('='), "box body");
    }

    #[test]
    fn heat_map_is_square() {
        let labels = vec!["a".to_string(), "b".to_string()];
        let m = vec![vec![1.0, 1.2], vec![1.2, 0.9]];
        let s = heat_map("t", &labels, &m);
        assert!(s.contains("1.20"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "empty value range")]
    fn box_chart_rejects_bad_range() {
        let summary = BoxSummary::from_samples(&[1.0]).unwrap();
        let _ = box_chart("t", &[("x".into(), summary)], 1.0, 1.0);
    }
}
