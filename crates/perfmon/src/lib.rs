//! # jsmt-perfmon
//!
//! Performance-monitoring substrate modeled after the Pentium 4 PMU as
//! driven by the *Brink & Abyss* tool used in the paper: a fixed event
//! space, a limited number of programmable counters with per-logical-CPU
//! and privilege filtering, raw counter sets, a sampling facility, and the
//! derived metrics (IPC/CPI, misses-per-kilo-instruction, retirement
//! profile) that the paper's figures are built from.
//!
//! The simulator's structural models increment [`CounterBank`]s directly;
//! the [`Pmu`] front end layers the *tool* semantics (18-counter limit,
//! event filtering) on top, so experiment code reads measurements the same
//! way the authors did.
//!
//! ## Example
//!
//! ```
//! use jsmt_perfmon::{CounterBank, Event, LogicalCpu};
//!
//! let mut bank = CounterBank::new();
//! bank.inc(LogicalCpu::Lp0, Event::UopsRetired);
//! bank.add(LogicalCpu::Lp0, Event::ClockCycles, 4);
//! assert_eq!(bank.total(Event::UopsRetired), 1);
//! assert_eq!(bank.get(LogicalCpu::Lp0, Event::ClockCycles), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod derived;
mod event;
mod pmu;
mod sampler;

pub use counters::{CounterBank, LogicalCpu};
pub use derived::{DerivedMetrics, RetirementProfile};
pub use event::Event;
pub use pmu::{CounterConfig, CounterId, Pmu, PmuError, PrivFilter, MAX_HW_COUNTERS};
pub use sampler::{Sample, Sampler};
