//! The architectural event space.

/// Countable architectural events.
///
/// This is the subset of the Pentium 4's 48-event space that the paper's
/// evaluation actually uses, plus the simulator-level events needed for the
/// JVM/OS breakdowns in Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Event {
    /// Core clock cycles elapsed (counted per logical CPU while active).
    ClockCycles,
    /// Cycles in which this logical CPU had a software thread bound.
    ActiveCycles,
    /// Cycles in which *both* logical CPUs had threads bound ("dual-thread
    /// mode" in the paper's Table 2). Counted symmetrically on both.
    DualThreadCycles,
    /// Cycles attributed to kernel-mode execution.
    OsCycles,
    /// Cycles spent with the pipeline retiring zero µops.
    CyclesRetire0,
    /// Cycles retiring exactly one µop.
    CyclesRetire1,
    /// Cycles retiring exactly two µops.
    CyclesRetire2,
    /// Cycles retiring exactly three µops (the P4 maximum).
    CyclesRetire3,
    /// µops retired.
    UopsRetired,
    /// µops retired in kernel mode.
    UopsRetiredKernel,
    /// Instructions retired (we treat one µop as one instruction for
    /// MPKI-style normalization, as Brink & Abyss's `instr_retired` does
    /// for tagged µops).
    InstrRetired,
    /// Trace cache lookups (one per fetch group).
    TcLookups,
    /// Trace cache misses (fetch falls back to the L2/decode path).
    TcMisses,
    /// Trace-line builds completed (fills after a miss).
    TcBuilds,
    /// L1 data cache lookups.
    L1dLookups,
    /// L1 data cache misses.
    L1dMisses,
    /// Unified L2 lookups (from both the instruction and data paths).
    L2Lookups,
    /// Unified L2 misses (to memory).
    L2Misses,
    /// Instruction TLB lookups.
    ItlbLookups,
    /// Instruction TLB misses.
    ItlbMisses,
    /// Data TLB lookups.
    DtlbLookups,
    /// Data TLB misses.
    DtlbMisses,
    /// BTB lookups (one per predicted branch).
    BtbLookups,
    /// BTB misses (no target available; static predict + refetch cost).
    BtbMisses,
    /// Branches retired.
    BranchesRetired,
    /// Branches retired whose direction or target was mispredicted.
    BranchMispredicts,
    /// Memory requests that reached DRAM.
    MemAccesses,
    /// Loads retired.
    LoadsRetired,
    /// Stores retired.
    StoresRetired,
    /// Pipeline squashes due to branch mispredicts.
    Squashes,
    /// Cycles this logical CPU's fetch was stalled (TC miss, redirect, …).
    FetchStallCycles,
    /// Cycles allocation stalled for lack of window/buffer entries.
    AllocStallCycles,
    /// Context switches performed by the OS on this logical CPU.
    ContextSwitches,
    /// Timer interrupts delivered.
    TimerInterrupts,
    /// System calls executed.
    Syscalls,
    /// Cycles spent executing the garbage collector.
    GcCycles,
    /// Garbage collections completed.
    GcCount,
    /// Objects allocated by the JVM layer.
    Allocations,
    /// Monitor (lock) acquisitions that contended and trapped to the OS.
    MonitorContended,
    /// Next-line prefetches issued into the L2 by the hardware prefetcher.
    PrefetchesIssued,
}

impl Event {
    /// Number of distinct events (size of a counter bank row).
    pub const COUNT: usize = 40;

    /// All events in index order.
    pub const ALL: [Event; Event::COUNT] = [
        Event::ClockCycles,
        Event::ActiveCycles,
        Event::DualThreadCycles,
        Event::OsCycles,
        Event::CyclesRetire0,
        Event::CyclesRetire1,
        Event::CyclesRetire2,
        Event::CyclesRetire3,
        Event::UopsRetired,
        Event::UopsRetiredKernel,
        Event::InstrRetired,
        Event::TcLookups,
        Event::TcMisses,
        Event::TcBuilds,
        Event::L1dLookups,
        Event::L1dMisses,
        Event::L2Lookups,
        Event::L2Misses,
        Event::ItlbLookups,
        Event::ItlbMisses,
        Event::DtlbLookups,
        Event::DtlbMisses,
        Event::BtbLookups,
        Event::BtbMisses,
        Event::BranchesRetired,
        Event::BranchMispredicts,
        Event::MemAccesses,
        Event::LoadsRetired,
        Event::StoresRetired,
        Event::Squashes,
        Event::FetchStallCycles,
        Event::AllocStallCycles,
        Event::ContextSwitches,
        Event::TimerInterrupts,
        Event::Syscalls,
        Event::GcCycles,
        Event::GcCount,
        Event::Allocations,
        Event::MonitorContended,
        Event::PrefetchesIssued,
    ];

    /// Stable index of the event.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short mnemonic used in reports (Brink & Abyss style).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Event::ClockCycles => "clk_cycles",
            Event::ActiveCycles => "active_cycles",
            Event::DualThreadCycles => "dt_cycles",
            Event::OsCycles => "os_cycles",
            Event::CyclesRetire0 => "retire0_cycles",
            Event::CyclesRetire1 => "retire1_cycles",
            Event::CyclesRetire2 => "retire2_cycles",
            Event::CyclesRetire3 => "retire3_cycles",
            Event::UopsRetired => "uops_retired",
            Event::UopsRetiredKernel => "uops_retired_k",
            Event::InstrRetired => "instr_retired",
            Event::TcLookups => "tc_lookups",
            Event::TcMisses => "tc_misses",
            Event::TcBuilds => "tc_builds",
            Event::L1dLookups => "l1d_lookups",
            Event::L1dMisses => "l1d_misses",
            Event::L2Lookups => "l2_lookups",
            Event::L2Misses => "l2_misses",
            Event::ItlbLookups => "itlb_lookups",
            Event::ItlbMisses => "itlb_misses",
            Event::DtlbLookups => "dtlb_lookups",
            Event::DtlbMisses => "dtlb_misses",
            Event::BtbLookups => "btb_lookups",
            Event::BtbMisses => "btb_misses",
            Event::BranchesRetired => "branches",
            Event::BranchMispredicts => "br_mispred",
            Event::MemAccesses => "mem_accesses",
            Event::LoadsRetired => "loads",
            Event::StoresRetired => "stores",
            Event::Squashes => "squashes",
            Event::FetchStallCycles => "fetch_stall",
            Event::AllocStallCycles => "alloc_stall",
            Event::ContextSwitches => "ctx_switches",
            Event::TimerInterrupts => "timer_irqs",
            Event::Syscalls => "syscalls",
            Event::GcCycles => "gc_cycles",
            Event::GcCount => "gc_count",
            Event::Allocations => "allocations",
            Event::MonitorContended => "mon_contended",
            Event::PrefetchesIssued => "prefetches",
        }
    }
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_covers_every_event_once() {
        let set: HashSet<_> = Event::ALL.iter().collect();
        assert_eq!(set.len(), Event::COUNT);
    }

    #[test]
    fn indices_match_positions() {
        for (i, e) in Event::ALL.iter().enumerate() {
            assert_eq!(e.index(), i, "event {e:?} index mismatch");
        }
    }

    #[test]
    fn mnemonics_are_unique() {
        let set: HashSet<_> = Event::ALL.iter().map(|e| e.mnemonic()).collect();
        assert_eq!(set.len(), Event::COUNT);
    }

    #[test]
    fn display_is_mnemonic() {
        assert_eq!(Event::TcMisses.to_string(), "tc_misses");
    }
}
