//! Raw counter storage.

use crate::Event;

/// One of the two logical CPUs (hardware thread contexts) of the modeled
/// Hyper-Threading processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LogicalCpu {
    /// Logical processor 0.
    Lp0,
    /// Logical processor 1.
    Lp1,
}

impl LogicalCpu {
    /// Both logical CPUs, in index order.
    pub const BOTH: [LogicalCpu; 2] = [LogicalCpu::Lp0, LogicalCpu::Lp1];

    /// Index (0 or 1).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            LogicalCpu::Lp0 => 0,
            LogicalCpu::Lp1 => 1,
        }
    }

    /// The sibling logical CPU.
    #[inline]
    pub fn sibling(self) -> LogicalCpu {
        match self {
            LogicalCpu::Lp0 => LogicalCpu::Lp1,
            LogicalCpu::Lp1 => LogicalCpu::Lp0,
        }
    }

    /// Logical CPU from an index.
    ///
    /// # Panics
    ///
    /// Panics if `i > 1`.
    #[inline]
    pub fn from_index(i: usize) -> LogicalCpu {
        match i {
            0 => LogicalCpu::Lp0,
            1 => LogicalCpu::Lp1,
            _ => panic!("logical cpu index out of range: {i}"),
        }
    }
}

/// Per-logical-CPU raw event counters.
///
/// All structural models increment a `CounterBank` as events occur; it is
/// the simulator-side ground truth that the [`crate::Pmu`] tool layer reads
/// through. The bank is cheap to clone and snapshot, which the
/// [`crate::Sampler`] uses for interval profiles.
#[derive(Clone, PartialEq, Eq)]
pub struct CounterBank {
    counts: [[u64; Event::COUNT]; 2],
}

impl CounterBank {
    /// A zeroed bank.
    pub fn new() -> Self {
        CounterBank {
            counts: [[0; Event::COUNT]; 2],
        }
    }

    /// Increment `event` on `lcpu` by one.
    #[inline]
    pub fn inc(&mut self, lcpu: LogicalCpu, event: Event) {
        self.counts[lcpu.index()][event.index()] += 1;
    }

    /// Add `n` occurrences of `event` on `lcpu`.
    #[inline]
    pub fn add(&mut self, lcpu: LogicalCpu, event: Event, n: u64) {
        self.counts[lcpu.index()][event.index()] += n;
    }

    /// Read the count of `event` on `lcpu`.
    #[inline]
    pub fn get(&self, lcpu: LogicalCpu, event: Event) -> u64 {
        self.counts[lcpu.index()][event.index()]
    }

    /// Sum of `event` across both logical CPUs.
    #[inline]
    pub fn total(&self, event: Event) -> u64 {
        self.counts[0][event.index()] + self.counts[1][event.index()]
    }

    /// Pointwise difference `self - earlier` (for interval sampling).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any counter decreased, which would indicate
    /// a simulator bug (counters are monotonic).
    pub fn delta(&self, earlier: &CounterBank) -> CounterBank {
        let mut out = CounterBank::new();
        for cpu in 0..2 {
            for ev in 0..Event::COUNT {
                debug_assert!(
                    self.counts[cpu][ev] >= earlier.counts[cpu][ev],
                    "counter went backwards"
                );
                out.counts[cpu][ev] = self.counts[cpu][ev].wrapping_sub(earlier.counts[cpu][ev]);
            }
        }
        out
    }

    /// Merge `other` into `self` (pointwise add).
    pub fn merge(&mut self, other: &CounterBank) {
        for cpu in 0..2 {
            for ev in 0..Event::COUNT {
                self.counts[cpu][ev] += other.counts[cpu][ev];
            }
        }
    }

    /// Reset all counters to zero.
    pub fn clear(&mut self) {
        self.counts = [[0; Event::COUNT]; 2];
    }

    /// Iterate over `(lcpu, event, count)` triples with nonzero counts.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (LogicalCpu, Event, u64)> + '_ {
        LogicalCpu::BOTH.into_iter().flat_map(move |cpu| {
            Event::ALL.into_iter().filter_map(move |ev| {
                let v = self.counts[cpu.index()][ev.index()];
                (v != 0).then_some((cpu, ev, v))
            })
        })
    }
}

impl Default for CounterBank {
    fn default() -> Self {
        Self::new()
    }
}

impl jsmt_snapshot::Snapshotable for CounterBank {
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        w.put_usize(Event::COUNT);
        for cpu in 0..2 {
            for ev in 0..Event::COUNT {
                w.put_u64(self.counts[cpu][ev]);
            }
        }
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        let n = r.get_usize()?;
        if n != Event::COUNT {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "counter bank event count mismatch",
            ));
        }
        for cpu in 0..2 {
            for ev in 0..Event::COUNT {
                self.counts[cpu][ev] = r.get_u64()?;
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for CounterBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut map = f.debug_map();
        for (cpu, ev, v) in self.iter_nonzero() {
            map.entry(&format!("{:?}/{}", cpu, ev.mnemonic()), &v);
        }
        map.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc_add_get_total() {
        let mut b = CounterBank::new();
        b.inc(LogicalCpu::Lp0, Event::TcMisses);
        b.add(LogicalCpu::Lp1, Event::TcMisses, 9);
        assert_eq!(b.get(LogicalCpu::Lp0, Event::TcMisses), 1);
        assert_eq!(b.get(LogicalCpu::Lp1, Event::TcMisses), 9);
        assert_eq!(b.total(Event::TcMisses), 10);
    }

    #[test]
    fn delta_subtracts() {
        let mut early = CounterBank::new();
        early.add(LogicalCpu::Lp0, Event::UopsRetired, 5);
        let mut late = early.clone();
        late.add(LogicalCpu::Lp0, Event::UopsRetired, 7);
        let d = late.delta(&early);
        assert_eq!(d.get(LogicalCpu::Lp0, Event::UopsRetired), 7);
    }

    #[test]
    fn merge_and_clear() {
        let mut a = CounterBank::new();
        let mut b = CounterBank::new();
        a.add(LogicalCpu::Lp0, Event::L2Misses, 3);
        b.add(LogicalCpu::Lp0, Event::L2Misses, 4);
        a.merge(&b);
        assert_eq!(a.total(Event::L2Misses), 7);
        a.clear();
        assert_eq!(a.total(Event::L2Misses), 0);
    }

    #[test]
    fn sibling_is_involution() {
        for cpu in LogicalCpu::BOTH {
            assert_eq!(cpu.sibling().sibling(), cpu);
            assert_ne!(cpu.sibling(), cpu);
        }
    }

    #[test]
    fn iter_nonzero_skips_zeroes() {
        let mut b = CounterBank::new();
        b.inc(LogicalCpu::Lp1, Event::GcCount);
        let all: Vec<_> = b.iter_nonzero().collect();
        assert_eq!(all, vec![(LogicalCpu::Lp1, Event::GcCount, 1)]);
    }

    #[test]
    fn debug_is_nonempty() {
        let b = CounterBank::new();
        assert!(!format!("{b:?}").is_empty());
    }
}
