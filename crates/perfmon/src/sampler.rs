//! Interval sampling of counter banks.
//!
//! The Pentium 4 introduced precise event-based sampling; the paper uses
//! interval profiles (e.g. the retirement profile of Figure 2). The
//! [`Sampler`] takes periodic snapshots of a [`CounterBank`] and exposes
//! per-interval deltas, giving experiments a time-series view of any event.

use crate::{CounterBank, Event};

/// One sampling interval: the cycle at which it ended and the counter
/// deltas accumulated during it.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Machine cycle at which the sample was taken.
    pub at_cycle: u64,
    /// Event deltas since the previous sample.
    pub delta: CounterBank,
}

/// Periodic counter snapshotter.
#[derive(Debug, Clone)]
pub struct Sampler {
    interval: u64,
    next_due: u64,
    last: CounterBank,
    samples: Vec<Sample>,
}

impl Sampler {
    /// Create a sampler that fires every `interval_cycles` machine cycles.
    ///
    /// # Panics
    ///
    /// Panics if `interval_cycles` is zero.
    pub fn new(interval_cycles: u64) -> Self {
        assert!(interval_cycles > 0, "sampling interval must be nonzero");
        Sampler {
            interval: interval_cycles,
            next_due: interval_cycles,
            last: CounterBank::new(),
            samples: Vec::new(),
        }
    }

    /// The configured interval.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The cycle at which the next sample falls due. Fast-forwarding
    /// callers must not jump past this point, so that the sample's
    /// `at_cycle` and counter snapshot match the step-by-step machine.
    pub fn next_due(&self) -> u64 {
        self.next_due
    }

    /// Offer the current machine state; records a sample if the interval
    /// elapsed. Call once per simulated cycle (cheap when not due).
    #[inline]
    pub fn tick(&mut self, cycle: u64, bank: &CounterBank) {
        if cycle >= self.next_due {
            self.force_sample(cycle, bank);
        }
    }

    /// Record a sample immediately (used at end-of-run so the tail interval
    /// is not lost).
    pub fn force_sample(&mut self, cycle: u64, bank: &CounterBank) {
        let delta = bank.delta(&self.last);
        self.last = bank.clone();
        self.samples.push(Sample {
            at_cycle: cycle,
            delta,
        });
        self.next_due = cycle + self.interval;
    }

    /// The recorded samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Time series of one event (summed over both logical CPUs), one value
    /// per interval.
    pub fn series(&self, event: Event) -> Vec<u64> {
        self.samples.iter().map(|s| s.delta.total(event)).collect()
    }
}

impl jsmt_snapshot::Snapshotable for Sampler {
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        w.put_u64(self.interval);
        w.put_u64(self.next_due);
        self.last.save_state(w);
        w.put_usize(self.samples.len());
        for s in &self.samples {
            w.put_u64(s.at_cycle);
            s.delta.save_state(w);
        }
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        let interval = r.get_u64()?;
        if interval == 0 {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "sampler interval must be nonzero",
            ));
        }
        self.interval = interval;
        self.next_due = r.get_u64()?;
        self.last.restore_state(r)?;
        let n = r.get_len(8)?;
        self.samples.clear();
        self.samples.reserve(n.min(1 << 20));
        for _ in 0..n {
            let at_cycle = r.get_u64()?;
            let mut delta = CounterBank::new();
            delta.restore_state(r)?;
            self.samples.push(Sample { at_cycle, delta });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogicalCpu;

    #[test]
    fn samples_capture_deltas() {
        let mut bank = CounterBank::new();
        let mut s = Sampler::new(100);
        bank.add(LogicalCpu::Lp0, Event::UopsRetired, 10);
        s.tick(100, &bank);
        bank.add(LogicalCpu::Lp0, Event::UopsRetired, 25);
        s.tick(200, &bank);
        let series = s.series(Event::UopsRetired);
        assert_eq!(series, vec![10, 25]);
    }

    #[test]
    fn tick_before_due_does_nothing() {
        let bank = CounterBank::new();
        let mut s = Sampler::new(1000);
        s.tick(1, &bank);
        s.tick(999, &bank);
        assert!(s.samples().is_empty());
    }

    #[test]
    fn force_sample_records_tail() {
        let mut bank = CounterBank::new();
        let mut s = Sampler::new(1_000_000);
        bank.add(LogicalCpu::Lp1, Event::GcCycles, 7);
        s.force_sample(42, &bank);
        assert_eq!(s.samples().len(), 1);
        assert_eq!(s.samples()[0].at_cycle, 42);
        assert_eq!(s.series(Event::GcCycles), vec![7]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_interval_rejected() {
        let _ = Sampler::new(0);
    }
}
