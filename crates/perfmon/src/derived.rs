//! Derived metrics: the quantities the paper's tables and figures plot.

use crate::{CounterBank, Event};

/// Retirement-width histogram, as fractions of total cycles (Figure 2 of
/// the paper: "the CPU does not commit any µop for around 60% of the total
/// execution time" with HT disabled).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetirementProfile {
    /// Fraction of cycles retiring 0 µops.
    pub retire0: f64,
    /// Fraction of cycles retiring 1 µop.
    pub retire1: f64,
    /// Fraction of cycles retiring 2 µops.
    pub retire2: f64,
    /// Fraction of cycles retiring 3 µops.
    pub retire3: f64,
}

impl RetirementProfile {
    /// Sum of the four fractions (should be ~1.0 for a complete run).
    pub fn total(&self) -> f64 {
        self.retire0 + self.retire1 + self.retire2 + self.retire3
    }
}

/// Derived (ratio) metrics computed from a [`CounterBank`].
///
/// The paper normalizes cache/TLB events to misses per 1,000 instructions
/// (MPKI) and branch prediction to a miss *ratio*; IPC/CPI are per-cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivedMetrics {
    /// Machine-wide instructions per cycle (both logical CPUs combined,
    /// divided by elapsed machine cycles).
    pub ipc: f64,
    /// Cycles per instruction (1/IPC).
    pub cpi: f64,
    /// Trace cache misses per kilo-instruction.
    pub tc_mpki: f64,
    /// L1 data cache misses per kilo-instruction.
    pub l1d_mpki: f64,
    /// L2 misses per kilo-instruction.
    pub l2_mpki: f64,
    /// ITLB misses per kilo-instruction.
    pub itlb_mpki: f64,
    /// DTLB misses per kilo-instruction.
    pub dtlb_mpki: f64,
    /// Fraction of BTB lookups that missed.
    pub btb_miss_ratio: f64,
    /// Fraction of retired branches that were mispredicted.
    pub branch_mispredict_ratio: f64,
    /// Fraction of cycles in OS (kernel) mode.
    pub os_cycle_fraction: f64,
    /// Fraction of cycles with both logical CPUs running threads.
    pub dual_thread_fraction: f64,
    /// Retirement-width histogram.
    pub retirement: RetirementProfile,
    /// Total instructions retired.
    pub instructions: u64,
    /// Elapsed machine cycles.
    pub cycles: u64,
}

impl DerivedMetrics {
    /// Compute all derived metrics from a bank, given the elapsed machine
    /// cycle count (wall-clock cycles of the whole core, not summed per
    /// logical CPU).
    pub fn from_bank(bank: &CounterBank, machine_cycles: u64) -> Self {
        let instr = bank.total(Event::InstrRetired);
        let cyc = machine_cycles.max(1);
        let ki = (instr as f64 / 1000.0).max(f64::MIN_POSITIVE);
        let ratio = |n: u64, d: u64| if d == 0 { 0.0 } else { n as f64 / d as f64 };
        let retire_cycles = bank.total(Event::CyclesRetire0)
            + bank.total(Event::CyclesRetire1)
            + bank.total(Event::CyclesRetire2)
            + bank.total(Event::CyclesRetire3);
        let rc = retire_cycles.max(1) as f64;
        let ipc = instr as f64 / cyc as f64;
        DerivedMetrics {
            ipc,
            cpi: if instr == 0 {
                f64::INFINITY
            } else {
                cyc as f64 / instr as f64
            },
            tc_mpki: bank.total(Event::TcMisses) as f64 / ki,
            l1d_mpki: bank.total(Event::L1dMisses) as f64 / ki,
            l2_mpki: bank.total(Event::L2Misses) as f64 / ki,
            itlb_mpki: bank.total(Event::ItlbMisses) as f64 / ki,
            dtlb_mpki: bank.total(Event::DtlbMisses) as f64 / ki,
            btb_miss_ratio: ratio(bank.total(Event::BtbMisses), bank.total(Event::BtbLookups)),
            branch_mispredict_ratio: ratio(
                bank.total(Event::BranchMispredicts),
                bank.total(Event::BranchesRetired),
            ),
            os_cycle_fraction: ratio(
                bank.total(Event::OsCycles),
                bank.total(Event::ActiveCycles).max(cyc),
            ),
            dual_thread_fraction: ratio(
                bank.get(crate::LogicalCpu::Lp0, Event::DualThreadCycles),
                cyc,
            ),
            retirement: RetirementProfile {
                retire0: bank.total(Event::CyclesRetire0) as f64 / rc,
                retire1: bank.total(Event::CyclesRetire1) as f64 / rc,
                retire2: bank.total(Event::CyclesRetire2) as f64 / rc,
                retire3: bank.total(Event::CyclesRetire3) as f64 / rc,
            },
            instructions: instr,
            cycles: machine_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogicalCpu;

    fn sample_bank() -> CounterBank {
        let mut b = CounterBank::new();
        b.add(LogicalCpu::Lp0, Event::InstrRetired, 10_000);
        b.add(LogicalCpu::Lp1, Event::InstrRetired, 10_000);
        b.add(LogicalCpu::Lp0, Event::TcMisses, 40);
        b.add(LogicalCpu::Lp0, Event::L1dMisses, 200);
        b.add(LogicalCpu::Lp0, Event::BtbLookups, 1000);
        b.add(LogicalCpu::Lp0, Event::BtbMisses, 50);
        b.add(LogicalCpu::Lp0, Event::CyclesRetire0, 6000);
        b.add(LogicalCpu::Lp0, Event::CyclesRetire1, 2000);
        b.add(LogicalCpu::Lp0, Event::CyclesRetire2, 1500);
        b.add(LogicalCpu::Lp0, Event::CyclesRetire3, 500);
        b.add(LogicalCpu::Lp0, Event::DualThreadCycles, 9000);
        b.add(LogicalCpu::Lp0, Event::OsCycles, 400);
        b.add(LogicalCpu::Lp0, Event::ActiveCycles, 10_000);
        b.add(LogicalCpu::Lp1, Event::ActiveCycles, 10_000);
        b
    }

    #[test]
    fn ipc_cpi_reciprocal() {
        let m = DerivedMetrics::from_bank(&sample_bank(), 10_000);
        assert!((m.ipc - 2.0).abs() < 1e-12);
        assert!((m.cpi - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mpki_normalizes_per_kilo_instruction() {
        let m = DerivedMetrics::from_bank(&sample_bank(), 10_000);
        assert!((m.tc_mpki - 2.0).abs() < 1e-9, "40 misses / 20 KI = 2 MPKI");
        assert!((m.l1d_mpki - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ratios() {
        let m = DerivedMetrics::from_bank(&sample_bank(), 10_000);
        assert!((m.btb_miss_ratio - 0.05).abs() < 1e-12);
        assert!((m.dual_thread_fraction - 0.9).abs() < 1e-12);
        assert!((m.os_cycle_fraction - 0.02).abs() < 1e-12);
    }

    #[test]
    fn retirement_profile_sums_to_one() {
        let m = DerivedMetrics::from_bank(&sample_bank(), 10_000);
        assert!((m.retirement.total() - 1.0).abs() < 1e-9);
        assert!((m.retirement.retire0 - 0.6).abs() < 1e-9);
    }

    #[test]
    fn zero_instruction_run_is_safe() {
        let m = DerivedMetrics::from_bank(&CounterBank::new(), 100);
        assert_eq!(m.ipc, 0.0);
        assert!(m.cpi.is_infinite());
        assert_eq!(m.tc_mpki, 0.0);
    }
}
