//! The tool-facing PMU layer.
//!
//! The Pentium 4 exposes 18 hardware counters, each programmable to count
//! one event filtered by logical CPU and privilege level; Brink & Abyss
//! wraps their configuration. This module reproduces that interface: an
//! experiment *programs* a limited set of counters and *reads* them, and
//! mis-programming (too many counters, double-programming) is an error —
//! the same constraint the paper's authors worked under when they had to
//! multiplex event sets across runs.

use crate::{CounterBank, Event, LogicalCpu};

/// Maximum simultaneously-programmed hardware counters (the Pentium 4 has
/// 18, which the paper contrasts with the Pentium III's 2).
pub const MAX_HW_COUNTERS: usize = 18;

/// Privilege-level filter for a programmed counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrivFilter {
    /// Count user-mode occurrences only.
    User,
    /// Count kernel-mode occurrences only.
    Kernel,
    /// Count both (the default).
    #[default]
    Both,
}

/// Configuration of one hardware counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterConfig {
    /// The event to count.
    pub event: Event,
    /// Restrict to one logical CPU, or `None` for both.
    pub lcpu: Option<LogicalCpu>,
    /// Privilege filter.
    pub priv_filter: PrivFilter,
}

impl CounterConfig {
    /// Count `event` on both logical CPUs at all privilege levels.
    pub fn all(event: Event) -> Self {
        CounterConfig {
            event,
            lcpu: None,
            priv_filter: PrivFilter::Both,
        }
    }

    /// Count `event` on a single logical CPU.
    pub fn on(event: Event, lcpu: LogicalCpu) -> Self {
        CounterConfig {
            event,
            lcpu: Some(lcpu),
            priv_filter: PrivFilter::Both,
        }
    }
}

/// Handle to a programmed counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterId(usize);

/// Errors from PMU programming.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PmuError {
    /// All hardware counters are already in use.
    OutOfCounters,
    /// The same configuration is already programmed.
    DuplicateConfig(CounterConfig),
    /// The counter id does not refer to a programmed counter.
    BadCounterId(CounterId),
}

impl std::fmt::Display for PmuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PmuError::OutOfCounters => {
                write!(f, "all {MAX_HW_COUNTERS} hardware counters are in use")
            }
            PmuError::DuplicateConfig(c) => write!(f, "configuration already programmed: {c:?}"),
            PmuError::BadCounterId(id) => write!(f, "no counter programmed with id {id:?}"),
        }
    }
}

impl std::error::Error for PmuError {}

/// The programmable PMU front end.
///
/// Reads are served from a [`CounterBank`] maintained by the simulator. The
/// privilege split uses the dedicated kernel-mode events where the bank
/// tracks them (`UopsRetiredKernel`, `OsCycles`); for other events a
/// privilege filter other than [`PrivFilter::Both`] returns the unfiltered
/// count, mirroring the real PMU's per-event filter-support quirks that
/// Brink & Abyss documents.
#[derive(Debug, Clone, Default)]
pub struct Pmu {
    programmed: Vec<CounterConfig>,
}

impl Pmu {
    /// A PMU with no counters programmed.
    pub fn new() -> Self {
        Pmu {
            programmed: Vec::new(),
        }
    }

    /// Program a counter.
    ///
    /// # Errors
    ///
    /// Returns [`PmuError::OutOfCounters`] when all [`MAX_HW_COUNTERS`]
    /// are in use and [`PmuError::DuplicateConfig`] when an identical
    /// configuration is already programmed.
    pub fn program(&mut self, config: CounterConfig) -> Result<CounterId, PmuError> {
        if self.programmed.len() >= MAX_HW_COUNTERS {
            return Err(PmuError::OutOfCounters);
        }
        if self.programmed.contains(&config) {
            return Err(PmuError::DuplicateConfig(config));
        }
        self.programmed.push(config);
        Ok(CounterId(self.programmed.len() - 1))
    }

    /// Number of counters currently programmed.
    pub fn in_use(&self) -> usize {
        self.programmed.len()
    }

    /// Release all programmed counters.
    pub fn reset(&mut self) {
        self.programmed.clear();
    }

    /// Read a programmed counter against the simulator's counter bank.
    ///
    /// # Errors
    ///
    /// Returns [`PmuError::BadCounterId`] for a stale or foreign id.
    pub fn read(&self, id: CounterId, bank: &CounterBank) -> Result<u64, PmuError> {
        let config = self
            .programmed
            .get(id.0)
            .ok_or(PmuError::BadCounterId(id))?;
        let raw = |event: Event| match config.lcpu {
            Some(lcpu) => bank.get(lcpu, event),
            None => bank.total(event),
        };
        let value = match (config.event, config.priv_filter) {
            (Event::UopsRetired, PrivFilter::Kernel) => raw(Event::UopsRetiredKernel),
            (Event::UopsRetired, PrivFilter::User) => {
                raw(Event::UopsRetired).saturating_sub(raw(Event::UopsRetiredKernel))
            }
            (Event::ClockCycles, PrivFilter::Kernel) => raw(Event::OsCycles),
            (Event::ClockCycles, PrivFilter::User) => {
                raw(Event::ClockCycles).saturating_sub(raw(Event::OsCycles))
            }
            (event, _) => raw(event),
        };
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank_with(lcpu: LogicalCpu, event: Event, n: u64) -> CounterBank {
        let mut b = CounterBank::new();
        b.add(lcpu, event, n);
        b
    }

    #[test]
    fn program_and_read() {
        let mut pmu = Pmu::new();
        let id = pmu.program(CounterConfig::all(Event::TcMisses)).unwrap();
        let bank = bank_with(LogicalCpu::Lp0, Event::TcMisses, 42);
        assert_eq!(pmu.read(id, &bank).unwrap(), 42);
    }

    #[test]
    fn lcpu_filter_applies() {
        let mut pmu = Pmu::new();
        let id0 = pmu
            .program(CounterConfig::on(Event::TcMisses, LogicalCpu::Lp0))
            .unwrap();
        let id1 = pmu
            .program(CounterConfig::on(Event::TcMisses, LogicalCpu::Lp1))
            .unwrap();
        let bank = bank_with(LogicalCpu::Lp1, Event::TcMisses, 5);
        assert_eq!(pmu.read(id0, &bank).unwrap(), 0);
        assert_eq!(pmu.read(id1, &bank).unwrap(), 5);
    }

    #[test]
    fn counter_limit_enforced() {
        let mut pmu = Pmu::new();
        for (i, ev) in Event::ALL.iter().enumerate().take(MAX_HW_COUNTERS) {
            pmu.program(CounterConfig::all(*ev))
                .unwrap_or_else(|e| panic!("slot {i}: {e}"));
        }
        let err = pmu
            .program(CounterConfig::all(Event::MonitorContended))
            .unwrap_err();
        assert_eq!(err, PmuError::OutOfCounters);
        pmu.reset();
        assert_eq!(pmu.in_use(), 0);
    }

    #[test]
    fn duplicates_rejected() {
        let mut pmu = Pmu::new();
        let c = CounterConfig::all(Event::L2Misses);
        pmu.program(c).unwrap();
        assert_eq!(pmu.program(c).unwrap_err(), PmuError::DuplicateConfig(c));
    }

    #[test]
    fn privilege_split_on_uops() {
        let mut pmu = Pmu::new();
        let user = pmu
            .program(CounterConfig {
                event: Event::UopsRetired,
                lcpu: None,
                priv_filter: PrivFilter::User,
            })
            .unwrap();
        let kern = pmu
            .program(CounterConfig {
                event: Event::UopsRetired,
                lcpu: None,
                priv_filter: PrivFilter::Kernel,
            })
            .unwrap();
        let mut bank = CounterBank::new();
        bank.add(LogicalCpu::Lp0, Event::UopsRetired, 100);
        bank.add(LogicalCpu::Lp0, Event::UopsRetiredKernel, 30);
        assert_eq!(pmu.read(user, &bank).unwrap(), 70);
        assert_eq!(pmu.read(kern, &bank).unwrap(), 30);
    }

    #[test]
    fn bad_id_is_an_error() {
        let pmu = Pmu::new();
        let bank = CounterBank::new();
        assert!(matches!(
            pmu.read(CounterId(3), &bank),
            Err(PmuError::BadCounterId(_))
        ));
    }

    #[test]
    fn errors_display() {
        assert!(PmuError::OutOfCounters.to_string().contains("18"));
    }
}
