//! Snapshot round-trip properties for the measurement layer: for any
//! reachable state, save → restore → save is byte-identical, and a
//! restored component continues exactly like its uninterrupted twin.

use jsmt_perfmon::{CounterBank, Event, LogicalCpu, Sampler};
use jsmt_snapshot::{restore_bytes, save_bytes};
use proptest::prelude::*;

fn arb_lcpu() -> impl Strategy<Value = LogicalCpu> {
    prop_oneof![Just(LogicalCpu::Lp0), Just(LogicalCpu::Lp1)]
}

fn arb_event() -> impl Strategy<Value = Event> {
    (0usize..Event::COUNT).prop_map(|i| Event::ALL[i])
}

proptest! {
    /// Any counter bank round-trips to an equal bank with canonical bytes.
    #[test]
    fn counter_bank_round_trips(ops in prop::collection::vec((arb_lcpu(), arb_event(), 0u64..1_000_000), 0..200)) {
        let mut bank = CounterBank::new();
        for (cpu, ev, n) in &ops {
            bank.add(*cpu, *ev, *n);
        }
        let bytes = save_bytes(&bank);
        let mut fresh = CounterBank::new();
        restore_bytes(&mut fresh, &bytes).expect("restore");
        prop_assert_eq!(&fresh, &bank);
        prop_assert_eq!(save_bytes(&fresh), bytes, "re-save not canonical");
    }

    /// A restored sampler continues tick-for-tick like its uninterrupted
    /// twin: same samples, same next_due, including a tick landing
    /// exactly on the restore boundary.
    #[test]
    fn sampler_round_trip_continues_identically(
        interval in 1u64..50,
        cut in 1usize..150,
        deltas in prop::collection::vec(0u64..20, 1..200),
    ) {
        let mut twin = Sampler::new(interval);
        let mut donor = Sampler::new(interval);
        let mut bank = CounterBank::new();
        let cut = cut.min(deltas.len());

        for (cycle0, d) in deltas[..cut].iter().enumerate() {
            bank.add(LogicalCpu::Lp0, Event::UopsRetired, *d);
            twin.tick(cycle0 as u64 + 1, &bank);
            donor.tick(cycle0 as u64 + 1, &bank);
        }

        // Interrupt the donor: restore into a sampler constructed with a
        // *different* interval (interval is part of the snapshot).
        let bytes = save_bytes(&donor);
        let mut restored = Sampler::new(1);
        restore_bytes(&mut restored, &bytes).expect("restore");
        prop_assert_eq!(restored.interval(), interval);
        prop_assert_eq!(restored.next_due(), donor.next_due());
        prop_assert_eq!(save_bytes(&restored), bytes, "re-save not canonical");

        for (i, d) in deltas[cut..].iter().enumerate() {
            let cycle = (cut + i) as u64 + 1;
            bank.add(LogicalCpu::Lp1, Event::L1dMisses, *d);
            twin.tick(cycle, &bank);
            restored.tick(cycle, &bank);
        }
        prop_assert_eq!(twin.samples().len(), restored.samples().len());
        for (a, b) in twin.samples().iter().zip(restored.samples()) {
            prop_assert_eq!(a.at_cycle, b.at_cycle);
            prop_assert_eq!(&a.delta, &b.delta);
        }
        prop_assert_eq!(save_bytes(&twin), save_bytes(&restored));
    }

    /// Corrupt sampler bytes never panic: every truncation errors.
    #[test]
    fn sampler_truncations_error_cleanly(interval in 1u64..100, n in 0usize..10) {
        let mut s = Sampler::new(interval);
        let mut bank = CounterBank::new();
        for i in 0..n {
            bank.add(LogicalCpu::Lp0, Event::ClockCycles, 3);
            s.force_sample(i as u64 * interval, &bank);
        }
        let bytes = save_bytes(&s);
        for cut in 0..bytes.len() {
            let mut victim = Sampler::new(1);
            prop_assert!(restore_bytes(&mut victim, &bytes[..cut]).is_err(),
                         "truncation at {cut} must error");
        }
    }
}
