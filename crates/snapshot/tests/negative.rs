//! Fuzz-style negative tests for the snapshot container: every class of
//! damage — truncation, bit flips, version bumps, kind confusion, length
//! lies, and arbitrary garbage — must surface as a clean `Err`, never a
//! panic and never a silent success.

use jsmt_snapshot::{
    diff_sections, fnv64, open, seal, walk_sections, Reader, SnapshotError, Writer, FORMAT_VERSION,
};
use proptest::prelude::*;

const KIND: u32 = 0x77;

/// A representative section-structured payload: containers, leaves,
/// strings, slices — every writer primitive appears at least once.
fn sample_payload() -> Vec<u8> {
    let mut w = Writer::new();
    w.section("meta", |w| {
        w.put_u64(0xDEAD_BEEF);
        w.put_bool(true);
        w.put_str("sample");
    });
    w.section("state", |w| {
        w.section("clock", |w| w.put_u64(123_456));
        w.section("counters", |w| {
            w.put_u64_slice(&[1, 2, 3, 4, 5]);
            w.put_f64_slice(&[0.25, -1.5]);
        });
        w.section("queue", |w| {
            w.put_usize(3);
            for i in 0..3u8 {
                w.put_u8(i);
                w.put_opt_u64(if i == 1 { Some(9) } else { None });
            }
        });
    });
    w.into_bytes()
}

/// Recompute and overwrite the trailing checksum so the framing damage
/// under test — not the checksum — is what the parser trips on.
fn refresh_checksum(bytes: &mut [u8]) {
    let n = bytes.len();
    let check = fnv64(&bytes[..n - 8]);
    bytes[n - 8..].copy_from_slice(&check.to_le_bytes());
}

#[test]
fn every_truncation_errors() {
    let sealed = seal(KIND, &sample_payload());
    for cut in 0..sealed.len() {
        assert!(
            open(&sealed[..cut], KIND).is_err(),
            "truncation at {cut} must error"
        );
    }
}

#[test]
fn version_bump_is_rejected_even_with_valid_checksum() {
    let mut sealed = seal(KIND, &sample_payload());
    sealed[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    refresh_checksum(&mut sealed);
    let err = open(&sealed, KIND).err().expect("version bump must error");
    match err {
        SnapshotError::UnsupportedVersion { found, expected } => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(expected, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn wrong_kind_is_rejected() {
    let sealed = seal(KIND, &sample_payload());
    let err = open(&sealed, KIND + 1)
        .err()
        .expect("wrong kind must error");
    match err {
        SnapshotError::WrongKind { found, expected } => {
            assert_eq!(found, KIND);
            assert_eq!(expected, KIND + 1);
        }
        other => panic!("expected WrongKind, got {other:?}"),
    }
}

#[test]
fn bad_magic_is_rejected() {
    let mut sealed = seal(KIND, &sample_payload());
    sealed[0] ^= 0xFF;
    refresh_checksum(&mut sealed);
    assert!(matches!(
        open(&sealed, KIND),
        Err(SnapshotError::BadMagic(_))
    ));
}

#[test]
fn lying_length_field_is_rejected() {
    // Claim one byte more than the file holds; checksum kept valid so
    // the length check itself has to catch it.
    let mut sealed = seal(KIND, &sample_payload());
    let claimed = u64::from_le_bytes(sealed[12..20].try_into().unwrap());
    sealed[12..20].copy_from_slice(&(claimed + 1).to_le_bytes());
    refresh_checksum(&mut sealed);
    assert!(open(&sealed, KIND).is_err());
}

#[test]
fn walk_and_diff_survive_payload_truncation() {
    let payload = sample_payload();
    assert!(walk_sections(&payload).is_ok());
    for cut in 0..payload.len() {
        // Must never panic; shorter prefixes may or may not parse as a
        // smaller forest, but a parsed result must not invent sections.
        if let Ok(nodes) = walk_sections(&payload[..cut]) {
            let full = walk_sections(&payload).unwrap();
            assert!(nodes.len() <= full.len());
        }
        let _ = diff_sections(&payload[..cut], &payload);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flipping any single byte of a sealed snapshot is detected (the
    /// checksum covers header and payload alike).
    #[test]
    fn any_byte_flip_is_detected(offset_seed in any::<u64>(), flip in 1u64..256) {
        let sealed = seal(KIND, &sample_payload());
        let offset = (offset_seed as usize) % sealed.len();
        let flip = flip as u8;
        let mut bad = sealed.clone();
        bad[offset] ^= flip;
        prop_assert!(open(&bad, KIND).is_err(), "flip {flip:#x} at {offset} undetected");
    }

    /// Arbitrary garbage never panics any entry point.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u64>(), 0..64)) {
        let raw: Vec<u8> = bytes.iter().flat_map(|v| v.to_le_bytes()).collect();
        let _ = open(&raw, KIND);
        let _ = walk_sections(&raw);
        let _ = diff_sections(&raw, &raw);
        // A bare reader over garbage: drain it with mixed gets.
        let mut r = Reader::new(&raw);
        while r.remaining() > 0 {
            if r.get_u64().is_err() {
                break;
            }
            if r.get_u8().is_err() {
                break;
            }
        }
    }

    /// Garbage spliced into the middle of a valid payload (with the
    /// checksum refreshed) still comes back as an error from section
    /// parsing, not a panic.
    #[test]
    fn spliced_payload_never_panics(at_frac in 0.0f64..1.0, junk in any::<u64>()) {
        let payload = sample_payload();
        let at = ((payload.len() as f64) * at_frac) as usize;
        let mut mutated = payload.clone();
        mutated.splice(at..at, junk.to_le_bytes());
        let mut sealed = seal(KIND, &mutated);
        refresh_checksum(&mut sealed);
        if let Ok(mut r) = open(&sealed, KIND) {
            let body = r.get_raw(r.remaining()).unwrap();
            let _ = walk_sections(body);
        }
    }
}
