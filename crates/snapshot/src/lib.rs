//! Hand-rolled, versioned, deterministic binary snapshot format.
//!
//! Every stateful simulator component serializes itself through the
//! [`Writer`]/[`Reader`] pair defined here: little-endian fixed-width
//! integers, `f64` as IEEE-754 bits, length-prefixed containers, and
//! *named sections* so two snapshots can be diffed structurally (see
//! [`diff_sections`], used by `repro bisect-divergence`).
//!
//! The crate is a leaf: no dependencies, no serde, no unsafe. Malformed
//! input of any kind — truncated, bit-flipped, version-bumped — must
//! surface as a [`SnapshotError`], never a panic: every read is
//! bounds-checked and every length is validated against the bytes that
//! remain before any allocation happens.
//!
//! ## File framing
//!
//! A sealed snapshot file is:
//!
//! ```text
//! magic   u32   0x544D534A ("JSMT" little-endian)
//! version u32   format version, bumped on incompatible change
//! kind    u32   what the payload is (system state, grid checkpoint, …)
//! len     u64   payload length in bytes
//! payload [u8]  section tree written by the component save_state chain
//! check   u64   FNV-1a over everything before this field
//! ```
//!
//! [`seal`] produces that envelope and [`open`] validates it, so any
//! corruption is caught by the checksum before component restore code
//! ever sees the payload.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// File magic: "JSMT" read as a little-endian `u32`.
pub const MAGIC: u32 = 0x544D_534A;

/// Current snapshot format version. Bump on incompatible layout change.
pub const FORMAT_VERSION: u32 = 1;

/// Longest section name the reader will accept (sanity bound so corrupt
/// headers cannot request absurd allocations).
const MAX_NAME: usize = 96;

/// Everything that can go wrong while decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input ended before a fixed-width field or counted payload.
    UnexpectedEof {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were actually left.
        available: usize,
    },
    /// The file does not start with [`MAGIC`].
    BadMagic(u32),
    /// The file was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The trailing FNV-1a checksum does not match the bytes.
    BadChecksum {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the file contents.
        computed: u64,
    },
    /// The payload is of a different kind than the caller expected
    /// (e.g. a grid checkpoint fed to `System::resume`).
    WrongKind {
        /// Kind tag found in the header.
        found: u32,
        /// Kind tag the caller expected.
        expected: u32,
    },
    /// A structural invariant failed (bad flag byte, impossible length,
    /// wrong section name, value out of domain, …).
    Corrupt(&'static str),
    /// Decoding finished but bytes were left over.
    TrailingBytes(usize),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::UnexpectedEof { needed, available } => {
                write!(
                    f,
                    "unexpected end of snapshot: needed {needed} bytes, {available} left"
                )
            }
            SnapshotError::BadMagic(m) => write!(f, "not a jsmt snapshot (magic {m:#010x})"),
            SnapshotError::UnsupportedVersion { found, expected } => {
                write!(
                    f,
                    "snapshot format version {found} (this build reads {expected})"
                )
            }
            SnapshotError::BadChecksum { stored, computed } => {
                write!(
                    f,
                    "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                )
            }
            SnapshotError::WrongKind { found, expected } => {
                write!(
                    f,
                    "snapshot kind {found} where kind {expected} was expected"
                )
            }
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after snapshot payload")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Convenience alias used by every `restore_state` implementation.
pub type Result<T> = std::result::Result<T, SnapshotError>;

/// FNV-1a over a byte slice; the snapshot checksum and also handy for
/// config fingerprints.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A component that can serialize its mutable state and later restore it
/// into a freshly constructed instance of itself.
///
/// The contract backing the round-trip test layer:
/// * `save → restore → save` yields byte-identical output, and
/// * a restored component stepped `K` cycles behaves bit-identically to
///   the uninterrupted original stepped the same `K` cycles.
pub trait Snapshotable {
    /// Append this component's state to `w`.
    fn save_state(&self, w: &mut Writer);
    /// Overwrite this component's state from `r`. On error the component
    /// may be left partially restored and must be discarded.
    fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<()>;
}

/// Serialize a [`Snapshotable`] to a raw (unsealed) byte vector.
pub fn save_bytes<T: Snapshotable + ?Sized>(t: &T) -> Vec<u8> {
    let mut w = Writer::new();
    t.save_state(&mut w);
    w.into_bytes()
}

/// Restore a [`Snapshotable`] from bytes produced by [`save_bytes`],
/// insisting that every byte is consumed.
pub fn restore_bytes<T: Snapshotable + ?Sized>(t: &mut T, bytes: &[u8]) -> Result<()> {
    let mut r = Reader::new(bytes);
    t.restore_state(&mut r)?;
    r.expect_end()
}

struct OpenSection {
    flag_pos: usize,
    len_pos: usize,
}

/// Append-only little-endian serializer with named, nested sections.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
    open: Vec<OpenSection>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Bytes written so far (including unpatched section headers).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian two's-complement `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64` (the format is 64-bit regardless of host).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a bool as a single 0/1 byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Append an optional `u64` as a presence byte plus the value.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_u64(x);
            }
            None => self.put_bool(false),
        }
    }

    /// Append raw bytes with no length prefix (caller knows the count).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a `u32`-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a length-prefixed slice of `u64`s.
    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_u64(v);
        }
    }

    /// Append a length-prefixed slice of `f64`s (bit patterns).
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Open a named section, run `f` to fill it, and close it. Sections
    /// nest; the header records whether a section contains subsections so
    /// a generic walker ([`walk_sections`]) can rebuild the tree without
    /// knowing any component's layout.
    pub fn section<F: FnOnce(&mut Writer)>(&mut self, name: &str, f: F) {
        debug_assert!(name.len() <= MAX_NAME, "section name too long: {name}");
        if let Some(parent) = self.open.last() {
            self.buf[parent.flag_pos] = 1;
        }
        self.put_u8(name.len() as u8);
        self.buf.extend_from_slice(name.as_bytes());
        let flag_pos = self.buf.len();
        self.put_u8(0); // container flag, patched when a child opens
        let len_pos = self.buf.len();
        self.put_u64(0); // payload length, patched on close
        self.open.push(OpenSection { flag_pos, len_pos });
        f(self);
        let sec = self.open.pop().expect("section stack underflow");
        let payload_len = (self.buf.len() - sec.len_pos - 8) as u64;
        self.buf[sec.len_pos..sec.len_pos + 8].copy_from_slice(&payload_len.to_le_bytes());
    }

    /// Finish writing and take the buffer. Panics (programmer error, not
    /// input error) if a section is still open.
    pub fn into_bytes(self) -> Vec<u8> {
        assert!(self.open.is_empty(), "unclosed snapshot section");
        self.buf
    }
}

/// Bounds-checked little-endian deserializer over a byte slice.
#[derive(Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Error unless the reader is fully consumed.
    pub fn expect_end(&self) -> Result<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(SnapshotError::TrailingBytes(self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(SnapshotError::UnexpectedEof {
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a little-endian two's-complement `i64`.
    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(self.get_u64()? as i64)
    }

    /// Read a `u64` and convert to `usize`.
    pub fn get_usize(&mut self) -> Result<usize> {
        usize::try_from(self.get_u64()?).map_err(|_| SnapshotError::Corrupt("count exceeds usize"))
    }

    /// Read an element count written by `put_usize`, validated against
    /// the bytes remaining: each element occupies at least
    /// `min_elem_bytes` bytes, so a hostile length can never trigger a
    /// huge allocation or a long decode loop.
    pub fn get_len(&mut self, min_elem_bytes: usize) -> Result<usize> {
        let n = self.get_usize()?;
        let floor = min_elem_bytes.max(1);
        if n > self.remaining() / floor {
            return Err(SnapshotError::Corrupt("length prefix exceeds payload"));
        }
        Ok(n)
    }

    /// Read an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a strict 0/1 bool byte.
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt("bool byte out of domain")),
        }
    }

    /// Read an optional `u64` written by [`Writer::put_opt_u64`].
    pub fn get_opt_u64(&mut self) -> Result<Option<u64>> {
        if self.get_bool()? {
            Ok(Some(self.get_u64()?))
        } else {
            Ok(None)
        }
    }

    /// Read exactly `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let n = self.get_u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt("invalid utf-8 string"))
    }

    /// Read a length-prefixed slice of `u64`s.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>> {
        let n = self.get_len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_u64()?);
        }
        Ok(out)
    }

    /// Read a length-prefixed slice of `f64`s.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>> {
        let n = self.get_len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    fn section_header(&mut self) -> Result<(&'a str, bool, usize)> {
        let name_len = self.get_u8()? as usize;
        if name_len > MAX_NAME {
            return Err(SnapshotError::Corrupt("section name too long"));
        }
        let name = std::str::from_utf8(self.take(name_len)?)
            .map_err(|_| SnapshotError::Corrupt("section name not utf-8"))?;
        let container = self.get_bool()?;
        let len = self.get_usize()?;
        if len > self.remaining() {
            return Err(SnapshotError::Corrupt("section length exceeds payload"));
        }
        Ok((name, container, len))
    }

    /// Enter the section that must come next and must be named `name`;
    /// returns a sub-reader over exactly its payload and advances this
    /// reader past it.
    pub fn section(&mut self, name: &str) -> Result<Reader<'a>> {
        let (found, _container, len) = self.section_header()?;
        if found != name {
            return Err(SnapshotError::Corrupt("section name mismatch"));
        }
        let payload = self.take(len)?;
        Ok(Reader::new(payload))
    }

    /// Read the next section whatever its name: `(name, is_container,
    /// payload reader)`. Used by the generic tree walker.
    pub fn any_section(&mut self) -> Result<(&'a str, bool, Reader<'a>)> {
        let (name, container, len) = self.section_header()?;
        let payload = self.take(len)?;
        Ok((name, container, Reader::new(payload)))
    }
}

/// Seal a payload into the framed, checksummed file format.
pub fn seal(kind: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 28);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let check = fnv64(&out);
    out.extend_from_slice(&check.to_le_bytes());
    out
}

/// Validate a sealed file's framing and checksum and return a reader
/// over its payload.
pub fn open(bytes: &[u8], expected_kind: u32) -> Result<Reader<'_>> {
    let mut r = Reader::new(bytes);
    let magic = r.get_u32()?;
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic(magic));
    }
    let version = r.get_u32()?;
    if version != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let kind = r.get_u32()?;
    let len = r.get_usize()?;
    if len + 8 != r.remaining() {
        return Err(SnapshotError::Corrupt(
            "payload length disagrees with file size",
        ));
    }
    let payload = r.get_raw(len)?;
    let stored = r.get_u64()?;
    let computed = fnv64(&bytes[..bytes.len() - 8]);
    if stored != computed {
        return Err(SnapshotError::BadChecksum { stored, computed });
    }
    r.expect_end()?;
    if kind != expected_kind {
        return Err(SnapshotError::WrongKind {
            found: kind,
            expected: expected_kind,
        });
    }
    Ok(Reader::new(payload))
}

/// One node of a snapshot's section tree, produced by [`walk_sections`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionNode {
    /// Slash-joined path of section names from the root.
    pub path: String,
    /// Whether this is a leaf (raw field bytes, no subsections).
    pub leaf: bool,
    /// The leaf's payload bytes (empty for containers).
    pub bytes: Vec<u8>,
}

fn walk_into(r: &mut Reader<'_>, prefix: &str, out: &mut Vec<SectionNode>) -> Result<()> {
    while !r.is_empty() {
        let (name, container, mut body) = r.any_section()?;
        let path = if prefix.is_empty() {
            name.to_string()
        } else {
            format!("{prefix}/{name}")
        };
        if container {
            out.push(SectionNode {
                path: path.clone(),
                leaf: false,
                bytes: Vec::new(),
            });
            walk_into(&mut body, &path, out)?;
        } else {
            out.push(SectionNode {
                path,
                leaf: true,
                bytes: body.get_raw(body.remaining())?.to_vec(),
            });
        }
    }
    Ok(())
}

/// Flatten a section-structured payload into its list of nodes in
/// document order. Fails cleanly if the payload is not section-framed.
pub fn walk_sections(payload: &[u8]) -> Result<Vec<SectionNode>> {
    let mut out = Vec::new();
    walk_into(&mut Reader::new(payload), "", &mut out)?;
    Ok(out)
}

/// How two snapshots' section trees differ at one path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SectionDiff {
    /// Leaf payloads differ; holds the first differing byte offset and
    /// both payload lengths.
    Differs {
        /// Slash-joined section path.
        path: String,
        /// Offset of the first differing byte within the leaf payload.
        offset: usize,
        /// Leaf payload length in snapshot A.
        len_a: usize,
        /// Leaf payload length in snapshot B.
        len_b: usize,
    },
    /// A section present in A has no counterpart (by position) in B.
    OnlyInA(String),
    /// A section present in B has no counterpart (by position) in A.
    OnlyInB(String),
}

/// Structurally diff two section-framed payloads, returning every leaf
/// where they disagree (empty when bit-identical).
pub fn diff_sections(a: &[u8], b: &[u8]) -> Result<Vec<SectionDiff>> {
    let na = walk_sections(a)?;
    let nb = walk_sections(b)?;
    let mut out = Vec::new();
    let mut ia = 0;
    let mut ib = 0;
    while ia < na.len() || ib < nb.len() {
        match (na.get(ia), nb.get(ib)) {
            (Some(x), Some(y)) if x.path == y.path => {
                if x.leaf && y.leaf && x.bytes != y.bytes {
                    let offset = x
                        .bytes
                        .iter()
                        .zip(&y.bytes)
                        .position(|(p, q)| p != q)
                        .unwrap_or_else(|| x.bytes.len().min(y.bytes.len()));
                    out.push(SectionDiff::Differs {
                        path: x.path.clone(),
                        offset,
                        len_a: x.bytes.len(),
                        len_b: y.bytes.len(),
                    });
                }
                ia += 1;
                ib += 1;
            }
            // Positional mismatch: resync by skipping whichever side has
            // the extra node (section order is deterministic, so this
            // only happens when one snapshot has more components).
            (Some(x), Some(y)) => {
                if nb.iter().skip(ib).any(|n| n.path == x.path) {
                    out.push(SectionDiff::OnlyInB(y.path.clone()));
                    ib += 1;
                } else {
                    out.push(SectionDiff::OnlyInA(x.path.clone()));
                    ia += 1;
                }
            }
            (Some(x), None) => {
                out.push(SectionDiff::OnlyInA(x.path.clone()));
                ia += 1;
            }
            (None, Some(y)) => {
                out.push(SectionDiff::OnlyInB(y.path.clone()));
                ib += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_i64(-42);
        w.put_f64(3.25);
        w.put_bool(true);
        w.put_opt_u64(None);
        w.put_opt_u64(Some(11));
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), 3.25);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_opt_u64().unwrap(), None);
        assert_eq!(r.get_opt_u64().unwrap(), Some(11));
        assert_eq!(r.get_str().unwrap(), "héllo");
        r.expect_end().unwrap();
    }

    #[test]
    fn sections_nest_and_walk() {
        let mut w = Writer::new();
        w.section("sys", |w| {
            w.section("core", |w| w.put_u64(1));
            w.section("mem", |w| {
                w.section("l1d", |w| w.put_u64(2));
            });
        });
        let bytes = w.into_bytes();
        let nodes = walk_sections(&bytes).unwrap();
        let paths: Vec<&str> = nodes.iter().map(|n| n.path.as_str()).collect();
        assert_eq!(paths, ["sys", "sys/core", "sys/mem", "sys/mem/l1d"]);
        assert!(!nodes[0].leaf && nodes[1].leaf && !nodes[2].leaf && nodes[3].leaf);

        let mut r = Reader::new(&bytes);
        let mut sys = r.section("sys").unwrap();
        let mut core = sys.section("core").unwrap();
        assert_eq!(core.get_u64().unwrap(), 1);
    }

    #[test]
    fn diff_pinpoints_the_leaf() {
        let build = |v: u64| {
            let mut w = Writer::new();
            w.section("sys", |w| {
                w.section("a", |w| w.put_u64(9));
                w.section("b", |w| w.put_u64(v));
            });
            w.into_bytes()
        };
        let d = diff_sections(&build(5), &build(6)).unwrap();
        assert_eq!(d.len(), 1);
        match &d[0] {
            SectionDiff::Differs { path, offset, .. } => {
                assert_eq!(path, "sys/b");
                assert_eq!(*offset, 0);
            }
            other => panic!("unexpected diff {other:?}"),
        }
        assert!(diff_sections(&build(5), &build(5)).unwrap().is_empty());
    }

    #[test]
    fn seal_and_open_round_trip() {
        let sealed = seal(3, b"payload-bytes");
        let mut r = open(&sealed, 3).unwrap();
        assert_eq!(r.get_raw(13).unwrap(), b"payload-bytes");
        r.expect_end().unwrap();
    }

    #[test]
    fn framing_rejects_tampering() {
        let sealed = seal(1, b"abc");
        // Magic.
        let mut bad = sealed.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(open(&bad, 1), Err(SnapshotError::BadMagic(_))));
        // Version (checksum still catches it first is fine too; recompute).
        let mut bad = sealed.clone();
        bad[4] = 0xEE;
        let n = bad.len();
        let c = fnv64(&bad[..n - 8]);
        bad[n - 8..].copy_from_slice(&c.to_le_bytes());
        assert!(matches!(
            open(&bad, 1),
            Err(SnapshotError::UnsupportedVersion { .. })
        ));
        // Payload bit-flip.
        let mut bad = sealed.clone();
        let n = bad.len();
        bad[n - 10] ^= 0x01;
        assert!(matches!(
            open(&bad, 1),
            Err(SnapshotError::BadChecksum { .. })
        ));
        // Truncation at every prefix length.
        for cut in 0..sealed.len() {
            assert!(open(&sealed[..cut], 1).is_err(), "cut at {cut} must fail");
        }
        // Wrong kind.
        assert!(matches!(
            open(&sealed, 2),
            Err(SnapshotError::WrongKind { .. })
        ));
    }

    #[test]
    fn hostile_lengths_do_not_allocate() {
        // A length prefix claiming 2^60 elements must fail fast.
        let mut w = Writer::new();
        w.put_u64(1 << 60);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_u64_vec(), Err(SnapshotError::Corrupt(_))));
    }
}
