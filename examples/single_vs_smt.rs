//! The paper's §4.3 story on one benchmark: a single-threaded Java
//! program pays for Hyper-Threading's static partitioning, and the
//! paper's proposed dynamic partitioning recovers the loss.
//!
//! ```text
//! cargo run --release --example single_vs_smt [benchmark]
//! ```

use jsmt_core::{System, SystemConfig};
use jsmt_cpu::Partition;
use jsmt_workloads::{BenchmarkId, WorkloadSpec};

fn run(spec: WorkloadSpec, cfg: SystemConfig) -> u64 {
    let mut sys = System::new(cfg);
    sys.add_process(spec);
    sys.run_to_completion().cycles
}

fn main() {
    let id = std::env::args()
        .nth(1)
        .and_then(|s| BenchmarkId::parse(&s))
        .unwrap_or(BenchmarkId::Db);
    assert!(
        BenchmarkId::SINGLE_THREADED.contains(&id),
        "pick one of the nine single-threaded benchmarks"
    );
    let spec = WorkloadSpec::single(id).with_scale(0.2);

    let ht_off = run(spec, SystemConfig::p4(false));
    let ht_static = run(spec, SystemConfig::p4(true));
    let ht_dynamic = run(
        spec,
        SystemConfig::p4(true).with_partition(Partition::Dynamic),
    );

    let pct = |x: u64| (x as f64 - ht_off as f64) / ht_off as f64 * 100.0;
    println!("benchmark: {id} (single-threaded)");
    println!("HT disabled              : {ht_off:>10} cycles   (baseline)");
    println!(
        "HT enabled, static  part.: {ht_static:>10} cycles   ({:+.2}%)",
        pct(ht_static)
    );
    println!(
        "HT enabled, dynamic part.: {ht_dynamic:>10} cycles   ({:+.2}%)",
        pct(ht_dynamic)
    );
    println!();
    println!(
        "The static partition costs {:+.2}% — the Figure 10 effect; the paper's",
        pct(ht_static)
    );
    println!(
        "proposed dynamic sharing recovers it to {:+.2}%.",
        pct(ht_dynamic)
    );
}
