//! A small multiprogrammed-pairing study (§4.2 in miniature): run a few
//! benchmark pairs with the paper's re-launch methodology and print their
//! combined speedups, showing the "bad partner" effect of the
//! trace-cache-hungry programs.
//!
//! ```text
//! cargo run --release --example pairing_matrix
//! ```

use jsmt_core::experiments::{run_pair, solo_baseline_cycles, ExperimentCtx};
use jsmt_workloads::BenchmarkId;

fn main() {
    let ctx = ExperimentCtx {
        scale: 0.15,
        repeats: 4,
        seed: 0x15_9A55,
    };
    // A friendly partner, a memory-bound program, and a bad partner.
    let picks = [BenchmarkId::Mpegaudio, BenchmarkId::Db, BenchmarkId::Jack];

    println!("solo HT-off baselines (cycles):");
    let solos: Vec<u64> = picks
        .iter()
        .map(|&b| {
            let s = solo_baseline_cycles(b, &ctx);
            println!("  {b:<10} {s}");
            s
        })
        .collect();

    println!();
    println!("combined speedups C_AB = A_S/A_H + B_S/B_H  (1.0 = time sharing, 2.0 = SMP):");
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "", picks[0], picks[1], picks[2]
    );
    for (i, &a) in picks.iter().enumerate() {
        print!("{:<12}", a.to_string());
        for (j, &b) in picks.iter().enumerate() {
            let o = run_pair(a, b, solos[i], solos[j], &ctx);
            print!(" {:>11.3}", o.combined);
        }
        println!();
    }
    println!();
    println!(
        "Pairs involving {} (a paper 'bad partner') should sit lowest:",
        BenchmarkId::Jack
    );
    println!("its compiled-code footprint thrashes the shared 12 Kuop trace cache.");
}
