//! The JVM-runtime angle: sweep the heap size for an allocation-heavy
//! benchmark and watch collections, GC-thread CPU time, and execution
//! time move — the "JVM helper threads" effect the paper highlights in
//! its introduction (the JVM is multithreaded even when the Java program
//! is not).
//!
//! ```text
//! cargo run --release --example gc_pressure
//! ```

use jsmt_core::{System, SystemConfig};
use jsmt_jvm::JvmConfig;
use jsmt_perfmon::Event;
use jsmt_workloads::{BenchmarkId, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::single(BenchmarkId::Jack).with_scale(0.15);
    println!("jack (string churn) under shrinking heaps, HT enabled:");
    println!(
        "{:>9} {:>10} {:>6} {:>12} {:>10}",
        "heap", "cycles", "GCs", "gc cycles", "allocs"
    );
    for heap_mib in [16u64, 8, 4, 2, 1] {
        let jvm = JvmConfig::default()
            .with_heap(heap_mib * 1024 * 1024)
            .with_survival(0.15);
        let mut sys = System::new(SystemConfig::p4(true));
        sys.add_process_with_jvm(spec, jvm);
        let report = sys.run_to_completion();
        println!(
            "{:>6}MiB {:>10} {:>6} {:>12} {:>10}",
            heap_mib,
            report.cycles,
            report.processes[0].gc_count,
            report.bank.total(Event::GcCycles),
            report.processes[0].allocations,
        );
    }
    println!();
    println!("Smaller heaps trade mutator time for collections; the GC thread's");
    println!("cycles run on the sibling hardware context when HT is enabled.");
}
