//! Quickstart: assemble the modeled machine, run one benchmark, and read
//! the performance counters — the `jsmt` equivalent of strapping Brink &
//! Abyss onto a JVM run.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use jsmt_core::{System, SystemConfig};
use jsmt_perfmon::Event;
use jsmt_workloads::{BenchmarkId, WorkloadSpec};

fn main() {
    // The paper's machine: 2.8 GHz Pentium 4, Hyper-Threading enabled.
    let config = SystemConfig::p4(true);

    // One JVM process running the MonteCarlo kernel with two threads at a
    // small scale (so this example finishes in a second or two).
    let spec = WorkloadSpec::threaded(BenchmarkId::MonteCarlo, 2).with_scale(0.1);

    let mut system = System::new(config);
    system.add_process(spec);
    let report = system.run_to_completion();

    println!("benchmark    : {} ({} threads)", spec.id, spec.threads);
    println!("cycles       : {}", report.cycles);
    println!("instructions : {}", report.metrics.instructions);
    println!("IPC          : {:.3}", report.metrics.ipc);
    println!("CPI          : {:.3}", report.metrics.cpi);
    println!(
        "OS cycles    : {:.2}%",
        report.metrics.os_cycle_fraction * 100.0
    );
    println!(
        "DT mode      : {:.2}%",
        report.metrics.dual_thread_fraction * 100.0
    );
    println!("TC MPKI      : {:.2}", report.metrics.tc_mpki);
    println!("L1D MPKI     : {:.2}", report.metrics.l1d_mpki);
    println!("L2 MPKI      : {:.2}", report.metrics.l2_mpki);
    println!("GC count     : {}", report.processes[0].gc_count);
    println!("allocations  : {}", report.processes[0].allocations);
    println!(
        "ctx switches : {}",
        report.bank.total(Event::ContextSwitches)
    );
    println!(
        "retirement   : 0-uop {:.1}%  1-uop {:.1}%  2-uop {:.1}%  3-uop {:.1}%",
        report.metrics.retirement.retire0 * 100.0,
        report.metrics.retirement.retire1 * 100.0,
        report.metrics.retirement.retire2 * 100.0,
        report.metrics.retirement.retire3 * 100.0,
    );
}
