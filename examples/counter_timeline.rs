//! Interval sampling (the Pentium 4's event-based sampling, as Brink &
//! Abyss exposes it): watch an allocation-heavy benchmark's counters over
//! time and see the garbage collector's periodic signature — GC bursts,
//! trace-cache disturbance afterwards.
//!
//! ```text
//! cargo run --release --example counter_timeline
//! ```

use jsmt_core::{System, SystemConfig};
use jsmt_jvm::JvmConfig;
use jsmt_perfmon::Event;
use jsmt_workloads::{BenchmarkId, WorkloadSpec};

fn main() {
    let mut sys = System::new(SystemConfig::p4(true));
    sys.add_process_with_jvm(
        WorkloadSpec::single(BenchmarkId::Jack).with_scale(0.2),
        JvmConfig::default().with_heap(1 << 20).with_survival(0.15),
    );
    sys.attach_sampler(100_000);
    let report = sys.run_to_completion();

    let sampler = sys.sampler().expect("attached above");
    let uops = sampler.series(Event::UopsRetired);
    let gc = sampler.series(Event::GcCycles);
    let tc = sampler.series(Event::TcMisses);

    println!("jack under a 1 MiB heap: per-100k-cycle interval profile");
    println!(
        "({} collections over {} cycles)\n",
        report.processes[0].gc_count, report.cycles
    );
    println!(
        "{:>8} {:>10} {:>10} {:>9}  activity",
        "interval", "uops", "gc cycles", "tc miss"
    );
    let max_uops = uops.iter().copied().max().unwrap_or(1).max(1);
    for (i, ((u, g), t)) in uops.iter().zip(&gc).zip(&tc).enumerate() {
        let bar = "#".repeat((u * 40 / max_uops) as usize);
        let marker = if *g > 10_000 { " <== GC" } else { "" };
        println!("{i:>8} {u:>10} {g:>10} {t:>9}  {bar}{marker}");
    }
    println!("\nIntervals dominated by GC cycles show the collector stealing the");
    println!("mutator's throughput; the trace-cache misses that follow are the");
    println!("mutator re-warming fetch state the collector displaced.");
}
