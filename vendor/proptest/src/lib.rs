//! A vendored, dependency-free subset of the `proptest` API.
//!
//! The build sandbox has no access to crates.io, so the real `proptest`
//! cannot be resolved; this crate implements the slice of its surface
//! that the jsmt property suites use, with a deterministic SplitMix64
//! generator so failures reproduce exactly. Supported:
//!
//! * `proptest! { ... }` (with optional `#![proptest_config(..)]`),
//! * numeric `Range` strategies, tuples up to arity 6, `Just`,
//!   `any::<bool|integer>()`, `.prop_map(..)`, `prop_oneof![..]`,
//! * `prop::collection::vec(strategy, len_range)`,
//! * `prop::sample::select(vec)`,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Shrinking is intentionally not implemented: cases are generated from
//! a seed derived from the test name, so a failing case is already
//! reproducible by rerunning the test. The case count honours the real
//! crate's `PROPTEST_CASES` environment variable.

use std::ops::Range;

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed the stream.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Build the per-test generator from the test's name, so every test has
/// its own stable stream.
pub fn test_rng(name: &str) -> TestRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::new(h)
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize);

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform choice between boxed alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    /// The alternatives.
    pub options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// `Vec`s of `elem` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Build a [`VecStrategy`].
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        vec_strategy(elem, len)
    }

    fn vec_strategy<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed set.
    pub struct Select<T>(Vec<T>);

    /// Build a [`Select`].
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty set");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// Per-suite configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Override the case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// `assert!` under a property (no shrinking, so a plain panic).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union {
            options: vec![$(Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>),+],
        }
    };
}

/// Declare property tests: each `pat in strategy` argument is drawn
/// freshly for every case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };

    /// Module-style access (`prop::collection::vec`, `prop::sample::select`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;

        /// Re-export for `prop::oneof`-style paths.
        pub use crate::Just;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_rng("bounds");
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_range(xs in prop::collection::vec(0u64..10, 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![Just(1u64), Just(2u64)],
                                 m in (0u64..4, 0u64..4).prop_map(|(a, b)| a + b),
                                 flag in any::<bool>()) {
            prop_assert!(v == 1u64 || v == 2u64);
            prop_assert!(m < 8);
            let _ = flag;
        }
    }
}
