//! A vendored, dependency-free subset of the `criterion` API.
//!
//! The build sandbox has no access to crates.io, so the real `criterion`
//! cannot be resolved; this crate keeps the `benches/` targets compiling
//! and producing useful wall-clock numbers. It implements the surface
//! the jsmt benches use: `Criterion::benchmark_group`, group
//! `throughput`/`sample_size`/`bench_function`/`finish`, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros. Statistics are
//! a simple best-of-samples mean; there is no HTML report.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group (rate is reported per
/// element/byte when set).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// `n` logical elements per iteration.
    Elements(u64),
    /// `n` bytes per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("# group {name}");
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            throughput: None,
            sample_size: 20,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("default");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Time one benchmark.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Calibrate the per-sample iteration count to ~5 ms.
        f(&mut b);
        let per_iter = (b.elapsed / b.iters as u32).max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(5).as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000);
        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters as u64,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            let per = b.elapsed / b.iters as u32;
            best = best.min(per);
            total += per;
        }
        let mean = total / self.sample_size as u32;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 / best.as_secs_f64().max(1e-12);
                format!(" ({per_sec:.3e}/s best)")
            }
            None => String::new(),
        };
        eprintln!(
            "{}/{id}: mean {:?}/iter, best {:?}/iter{rate}",
            self.name, mean, best
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to the closure of `bench_function`; measures the inner loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Bundle benchmark functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point expanding to `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
